//! The fuzz driver: generate → check → shrink, seed after seed.
//!
//! [`run_fuzz`] walks a contiguous seed range through
//! [`Scenario::generate`] and [`check_scenario`], shrinking every failure
//! into a [`Repro`] before moving on. An optional wall-clock budget stops
//! the loop between seeds (never mid-scenario), so a CI smoke job can pin
//! its runtime while still checking whole scenarios. Failures don't abort
//! the run — a fuzz session reports everything it found.

use crate::gen::Scenario;
use crate::oracle::{check_scenario, ScenarioOutcome, Violation};
use crate::shrink::{shrink, Repro};
use std::time::{Duration, Instant};

/// Oracle evaluations granted to the shrinker per failure.
pub const SHRINK_BUDGET: usize = 150;

/// What one fuzz session did.
#[derive(Debug, Clone)]
pub struct FuzzReport {
    /// Seeds actually checked (≤ requested when the budget expires).
    pub checked: u64,
    /// First seed of the range.
    pub start_seed: u64,
    /// Shrunk repros, one per failing seed.
    pub failures: Vec<Repro>,
    /// Wall-clock time spent.
    pub elapsed: Duration,
}

impl FuzzReport {
    /// Whether every checked scenario passed every oracle.
    pub fn clean(&self) -> bool {
        self.failures.is_empty()
    }
}

/// Per-seed progress callback: the seed and its outcome (clean summary or
/// the pre-shrink violation).
pub type ProgressFn<'a> = &'a mut dyn FnMut(u64, &Result<ScenarioOutcome, Violation>);

/// Fuzz `seeds` consecutive seeds from `start_seed`, stopping early once
/// `budget` wall-clock time has elapsed (checked between seeds). Each
/// failure is shrunk with [`SHRINK_BUDGET`] oracle evaluations.
pub fn run_fuzz(
    start_seed: u64,
    seeds: u64,
    budget: Option<Duration>,
    progress: ProgressFn<'_>,
) -> FuzzReport {
    let t0 = Instant::now();
    let mut failures = Vec::new();
    let mut checked = 0u64;
    for seed in start_seed..start_seed.saturating_add(seeds) {
        if let Some(b) = budget {
            if checked > 0 && t0.elapsed() >= b {
                break;
            }
        }
        let scenario = Scenario::generate(seed);
        let result = check_scenario(&scenario);
        progress(seed, &result);
        checked += 1;
        if let Err(violation) = result {
            let fails = |candidate: &Scenario| check_scenario(candidate).err();
            let small = shrink(&scenario, &violation.oracle, SHRINK_BUDGET, fails);
            // Re-derive the violation at the shrunk scenario so the repro's
            // detail matches what it replays to.
            let final_violation = check_scenario(&small).err().unwrap_or(violation);
            failures.push(Repro::new(&small, &final_violation));
        }
    }
    FuzzReport { checked, start_seed, failures, elapsed: t0.elapsed() }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fuzz_checks_the_requested_range() {
        let mut seen = Vec::new();
        let report = run_fuzz(100, 3, None, &mut |seed, _| seen.push(seed));
        assert_eq!(report.checked, 3);
        assert_eq!(seen, vec![100, 101, 102]);
        assert!(report.clean(), "seeds 100..103 must pass: {:?}", report.failures);
    }

    #[test]
    fn zero_budget_still_checks_one_seed() {
        // The budget is checked between seeds, so a tiny budget still
        // produces at least one whole-scenario result.
        let report = run_fuzz(5, 10, Some(Duration::ZERO), &mut |_, _| {});
        assert_eq!(report.checked, 1);
    }
}
