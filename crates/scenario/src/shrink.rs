//! The minimizing shrinker: reduce a failing scenario to a small,
//! replayable repro.
//!
//! Scenarios are plain serializable structs ([`crate::gen`]), so shrinking
//! is direct mutation, not seed search: each pass proposes a structurally
//! smaller candidate (fewer churn events, fewer cities, a smaller shell, a
//! shorter horizon, simpler knobs), re-runs the caller's oracle closure,
//! and keeps the candidate only if the *same* oracle still fails — a
//! different failure means the mutation changed the bug, not minimized it.
//! Candidates are [`Scenario::sanitize`]d first, so out-of-range schedule
//! events produced by a mutation are dropped rather than rejected.
//!
//! The result ships as a [`Repro`]: the shrunk scenario plus the violated
//! oracle, serialized as one line of compact JSON. Replaying is
//! [`Repro::from_json`] + [`crate::oracle::check_scenario`] — no
//! generator, no date, no environment involved.

use crate::gen::Scenario;
use crate::oracle::Violation;
use serde::{Deserialize, Serialize};
use traffic::ChurnSchedule;

/// A replayable failure: the shrunk scenario and what it violates.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Repro {
    /// The generating seed (provenance; `scenario` is authoritative).
    pub seed: u64,
    /// The violated oracle's stable name.
    pub oracle: String,
    /// The violation detail at the shrunk scenario.
    pub detail: String,
    /// The full shrunk scenario — replay with
    /// [`crate::oracle::check_scenario`].
    pub scenario: Scenario,
}

impl Repro {
    /// Package a failing scenario with its violation.
    pub fn new(scenario: &Scenario, violation: &Violation) -> Repro {
        Repro {
            seed: scenario.seed,
            oracle: violation.oracle.clone(),
            detail: violation.detail.clone(),
            scenario: scenario.clone(),
        }
    }

    /// One line of compact JSON (the repro format checked into
    /// `tests/corpus/` and uploaded by the CI fuzz job).
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("repro serializes")
    }

    /// Parse a repro back (accepts the [`Repro::to_json`] format).
    pub fn from_json(json: &str) -> Result<Repro, serde_json::Error> {
        serde_json::from_str(json)
    }
}

/// Shrink `scenario` while `fails` keeps returning a violation of
/// `target_oracle`. `budget` bounds the number of oracle evaluations (each
/// evaluation runs the whole stack, so this is the knob that caps shrink
/// time). Returns the smallest accepted scenario; the input itself if
/// nothing smaller fails the same way.
pub fn shrink(
    scenario: &Scenario,
    target_oracle: &str,
    budget: usize,
    fails: impl Fn(&Scenario) -> Option<Violation>,
) -> Scenario {
    let mut best = scenario.clone();
    let mut evals = 0usize;
    let accept = |candidate: &mut Scenario, best: &mut Scenario, evals: &mut usize| -> bool {
        if *evals >= budget {
            return false;
        }
        candidate.sanitize();
        if candidate == best {
            return false;
        }
        *evals += 1;
        match fails(candidate) {
            Some(v) if v.oracle == target_oracle => {
                *best = candidate.clone();
                true
            }
            _ => false,
        }
    };

    // Iterate the passes to a fixpoint: later passes (shorter horizon)
    // often re-enable earlier ones (fewer events survive sanitize).
    loop {
        let before = best.clone();

        // Pass 1: delta-debug the churn schedule — drop halves, then
        // single events.
        let mut chunk = (best.schedule.events.len() / 2).max(1);
        while !best.schedule.events.is_empty() && evals < budget {
            let mut removed_any = false;
            let mut start = 0;
            while start < best.schedule.events.len() && evals < budget {
                let mut candidate = best.clone();
                let end = (start + chunk).min(candidate.schedule.events.len());
                candidate.schedule.events.drain(start..end);
                if accept(&mut candidate, &mut best, &mut evals) {
                    removed_any = true; // indices shifted; retry same start
                } else {
                    start += chunk;
                }
            }
            if chunk == 1 && !removed_any {
                break;
            }
            if !removed_any {
                chunk = (chunk / 2).max(1);
            }
        }
        // An event-free scenario may still fail; try the empty schedule
        // outright in case the loop above stalled on interacting events.
        if !best.schedule.events.is_empty() {
            let mut candidate = best.clone();
            candidate.schedule = ChurnSchedule::new();
            accept(&mut candidate, &mut best, &mut evals);
        }

        // Pass 2: fewer cities (halve the list, then drop singles).
        while best.cities.len() > 1 && evals < budget {
            let mut candidate = best.clone();
            let keep = candidate.cities.len() / 2;
            candidate.cities.truncate(keep.max(1));
            if !accept(&mut candidate, &mut best, &mut evals) {
                break;
            }
        }
        while best.cities.len() > 1 && evals < budget {
            let mut candidate = best.clone();
            candidate.cities.pop();
            if !accept(&mut candidate, &mut best, &mut evals) {
                break;
            }
        }

        // Pass 3: a smaller shell (halve planes and sats per plane).
        for field in ["planes", "sats_per_plane"] {
            loop {
                let mut candidate = best.clone();
                let v = match field {
                    "planes" => &mut candidate.planes,
                    _ => &mut candidate.sats_per_plane,
                };
                if *v <= 1 {
                    break;
                }
                *v /= 2;
                if !accept(&mut candidate, &mut best, &mut evals) {
                    break;
                }
            }
        }

        // Pass 4: a shorter horizon (halve toward one step).
        loop {
            let mut candidate = best.clone();
            if candidate.steps() <= 2 {
                break;
            }
            candidate.horizon_s /= 2.0;
            if !accept(&mut candidate, &mut best, &mut evals) {
                break;
            }
        }

        // Pass 5: simplify the knobs toward their plainest values.
        for simplify in [
            (|c: &mut Scenario| c.n_parties = 1) as fn(&mut Scenario),
            |c| c.max_hops = 0,
            |c| c.sgp4 = false,
            |c| c.jitter = 0.0,
            |c| c.gateway_stride = 1,
            |c| c.ownership = crate::gen::Ownership::RoundRobin,
            |c| c.epoch_steps = c.steps() + 1,
        ] {
            let mut candidate = best.clone();
            simplify(&mut candidate);
            accept(&mut candidate, &mut best, &mut evals);
        }

        if best == before || evals >= budget {
            return best;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::Violation;

    fn violation() -> Violation {
        Violation { oracle: "max-min".to_string(), detail: "synthetic".to_string() }
    }

    /// A synthetic oracle that fails whenever the scenario still has at
    /// least `min_sats` satellites — shrinking must ride the boundary down
    /// to it and stop.
    fn fails_while_sats_at_least(min_sats: usize) -> impl Fn(&Scenario) -> Option<Violation> {
        move |sc| (sc.n_sats() >= min_sats).then(violation)
    }

    #[test]
    fn shrink_minimizes_against_a_synthetic_oracle() {
        let sc = Scenario::generate(42);
        assert!(sc.n_sats() >= 6);
        let small = shrink(&sc, "max-min", 500, fails_while_sats_at_least(4));
        assert!(small.n_sats() >= 4, "shrink may not cross the failure boundary");
        assert!(small.n_sats() <= 7, "shrink should approach the boundary, got {}", small.n_sats());
        assert!(small.schedule.events.is_empty(), "irrelevant events must be dropped");
        assert_eq!(small.cities.len(), 1, "irrelevant cities must be dropped");
        assert!(small.steps() <= sc.steps());
    }

    #[test]
    fn shrink_rejects_candidates_that_fail_a_different_oracle() {
        let sc = Scenario::generate(7);
        // Small scenarios fail a *different* oracle, so they must be
        // rejected even though they fail.
        let tricky = |c: &Scenario| {
            if c.n_sats() < sc.n_sats() {
                Some(Violation { oracle: "other".to_string(), detail: String::new() })
            } else {
                Some(violation())
            }
        };
        let small = shrink(&sc, "max-min", 200, tricky);
        assert_eq!(small.n_sats(), sc.n_sats(), "must not accept a different failure");
    }

    #[test]
    fn shrink_respects_the_evaluation_budget() {
        let sc = Scenario::generate(13);
        let count = std::cell::Cell::new(0usize);
        let counting = |_: &Scenario| {
            count.set(count.get() + 1);
            Some(violation())
        };
        shrink(&sc, "max-min", 10, counting);
        assert!(count.get() <= 10, "budget exceeded: {} evaluations", count.get());
    }

    #[test]
    fn repro_round_trips_and_is_one_line() {
        let sc = Scenario::generate(3);
        let repro = Repro::new(&sc, &violation());
        let json = repro.to_json();
        assert_eq!(json.lines().count(), 1, "compact JSON is a single line");
        let back = Repro::from_json(&json).unwrap();
        assert_eq!(back.scenario, sc);
        assert_eq!(back.oracle, "max-min");
    }
}
