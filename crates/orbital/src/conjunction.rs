//! Conjunction screening: close approaches between satellites.
//!
//! One of the paper's three charges against independent constellations (§1)
//! is orbital congestion: "an increase in the deployment of large
//! constellations will lead to increased orbital congestion, with higher
//! risks of collisions". This module quantifies that risk for any
//! constellation mix: it propagates all satellites over a screening window
//! and reports pairs that pass within a threshold distance.
//!
//! The screener uses a two-stage filter so all-vs-all screening of
//! thousand-satellite constellations stays tractable:
//!
//! 1. **apogee/perigee gate** — pairs whose radial shells never overlap
//!    (within the threshold) can never conjunct and are skipped outright;
//! 2. **coarse-to-fine time search** — surviving pairs are sampled coarsely;
//!    local minima below a guard radius are refined by golden-section search.

use crate::kepler::ClassicalElements;
use crate::propagator::{KeplerJ2, Propagator};
use crate::time::Epoch;
use serde::{Deserialize, Serialize};

/// A detected close approach.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Conjunction {
    /// Index of the first satellite (input order).
    pub sat_a: usize,
    /// Index of the second satellite.
    pub sat_b: usize,
    /// Time of closest approach, seconds after the screening start.
    pub tca_offset_s: f64,
    /// Miss distance at closest approach, km.
    pub miss_distance_km: f64,
}

/// Screening configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ScreeningConfig {
    /// Report conjunctions with miss distance below this, km.
    pub threshold_km: f64,
    /// Coarse sampling step, seconds. Must be well under half the orbital
    /// period; 30–60 s works for LEO.
    pub coarse_step_s: f64,
    /// Radial gate padding, km (added to the threshold when comparing
    /// apogee/perigee shells).
    pub radial_pad_km: f64,
}

impl Default for ScreeningConfig {
    fn default() -> Self {
        ScreeningConfig { threshold_km: 10.0, coarse_step_s: 30.0, radial_pad_km: 5.0 }
    }
}

/// Screen all pairs of `elements` (valid at `epoch`) over `window_s`
/// seconds. Returns every conjunction below the threshold, one per pair
/// (the closest approach found).
pub fn screen_all_pairs(
    elements: &[ClassicalElements],
    epoch: Epoch,
    window_s: f64,
    config: &ScreeningConfig,
) -> Vec<Conjunction> {
    let props: Vec<KeplerJ2> = elements.iter().map(|e| KeplerJ2::from_elements(e, epoch)).collect();
    let shells: Vec<(f64, f64)> = elements
        .iter()
        .map(|e| {
            (
                e.semi_major_axis_km * (1.0 - e.eccentricity),
                e.semi_major_axis_km * (1.0 + e.eccentricity),
            )
        })
        .collect();
    let mut out = Vec::new();
    for a in 0..elements.len() {
        for b in (a + 1)..elements.len() {
            // Stage 1: radial shells must overlap within threshold + pad.
            let gap = shell_gap(shells[a], shells[b]);
            if gap > config.threshold_km + config.radial_pad_km {
                continue;
            }
            if let Some(c) = screen_pair(&props[a], &props[b], epoch, window_s, config) {
                out.push(Conjunction { sat_a: a, sat_b: b, ..c });
            }
        }
    }
    out.sort_by(|x, y| x.miss_distance_km.partial_cmp(&y.miss_distance_km).unwrap());
    out
}

fn shell_gap(a: (f64, f64), b: (f64, f64)) -> f64 {
    // Distance between [a.0, a.1] and [b.0, b.1] intervals (0 if overlap).
    if a.1 < b.0 {
        b.0 - a.1
    } else if b.1 < a.0 {
        a.0 - b.1
    } else {
        0.0
    }
}

/// Find the closest approach of one pair over the window. Returns `None`
/// when it never drops below the threshold.
pub fn screen_pair(
    a: &dyn Propagator,
    b: &dyn Propagator,
    epoch: Epoch,
    window_s: f64,
    config: &ScreeningConfig,
) -> Option<Conjunction> {
    let dist = |t: f64| -> f64 {
        let e = epoch.plus_seconds(t);
        (a.position_at(e) - b.position_at(e)).norm()
    };
    // Coarse scan for local minima.
    let step = config.coarse_step_s;
    let n = (window_s / step).ceil() as usize;
    let mut best: Option<(f64, f64)> = None; // (t, d)
    let mut prev2 = dist(0.0);
    let mut prev1 = if n >= 1 { dist(step) } else { prev2 };
    for k in 2..=n {
        let t = k as f64 * step;
        let d = dist(t);
        // Local minimum at prev1?
        if prev1 <= prev2 && prev1 <= d {
            // Guard: only refine minima that could plausibly dip below the
            // threshold (relative speeds < 16 km/s, so within one coarse
            // step the distance changes by at most step * 16).
            if prev1 < config.threshold_km + step * 16.0 {
                let (t_min, d_min) = golden_refine(&dist, (k - 2) as f64 * step, t);
                if best.is_none_or(|(_, bd)| d_min < bd) {
                    best = Some((t_min, d_min));
                }
            }
        }
        prev2 = prev1;
        prev1 = d;
    }
    match best {
        Some((t, d)) if d <= config.threshold_km => Some(Conjunction {
            sat_a: 0,
            sat_b: 0,
            tca_offset_s: t,
            miss_distance_km: d,
        }),
        _ => None,
    }
}

/// Golden-section minimization of `f` on `[lo, hi]`.
fn golden_refine(f: &dyn Fn(f64) -> f64, mut lo: f64, mut hi: f64) -> (f64, f64) {
    const PHI: f64 = 0.618_033_988_749_895;
    let mut c = hi - PHI * (hi - lo);
    let mut d = lo + PHI * (hi - lo);
    let mut fc = f(c);
    let mut fd = f(d);
    for _ in 0..60 {
        if (hi - lo).abs() < 1e-3 {
            break;
        }
        if fc < fd {
            hi = d;
            d = c;
            fd = fc;
            c = hi - PHI * (hi - lo);
            fc = f(c);
        } else {
            lo = c;
            c = d;
            fc = fd;
            d = lo + PHI * (hi - lo);
            fd = f(d);
        }
    }
    let t = (lo + hi) / 2.0;
    (t, f(t))
}

/// Congestion summary of a screening run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CongestionReport {
    /// Number of satellites screened.
    pub satellites: usize,
    /// Conjunctions below the threshold.
    pub conjunctions: usize,
    /// Closest approach seen, km (`f64::INFINITY` when none).
    pub min_miss_km: f64,
    /// Conjunctions per satellite per day — the congestion rate the §1
    /// argument is about.
    pub rate_per_sat_day: f64,
}

/// Summarize a screening run.
pub fn congestion_report(
    conjunctions: &[Conjunction],
    satellites: usize,
    window_s: f64,
) -> CongestionReport {
    let min_miss = conjunctions
        .iter()
        .map(|c| c.miss_distance_km)
        .fold(f64::INFINITY, f64::min);
    let days = window_s / 86_400.0;
    CongestionReport {
        satellites,
        conjunctions: conjunctions.len(),
        min_miss_km: min_miss,
        rate_per_sat_day: if satellites == 0 || days == 0.0 {
            0.0
        } else {
            conjunctions.len() as f64 / satellites as f64 / days
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::constellation::{walker_delta, ShellSpec};
    use crate::math::deg_to_rad;

    fn epoch() -> Epoch {
        Epoch::from_ymdhms(2024, 6, 1, 0, 0, 0.0)
    }

    #[test]
    fn coplanar_same_phase_different_altitude_never_close() {
        let a = ClassicalElements::circular(550.0, deg_to_rad(53.0), 0.0, 0.0);
        let b = ClassicalElements::circular(600.0, deg_to_rad(53.0), 0.0, 0.0);
        let found = screen_all_pairs(&[a, b], epoch(), 6.0 * 3600.0, &ScreeningConfig::default());
        assert!(found.is_empty(), "50 km radial separation cannot conjunct at 10 km threshold");
    }

    /// Build an orbit that passes through satellite `a`'s position at
    /// `t_star` seconds, but arriving on a different plane (velocity
    /// rotated about the radial direction by `rot_rad`). The returned
    /// elements are valid at `epoch()` (propagated back by `t_star`).
    fn crossing_orbit(a: &ClassicalElements, t_star: f64, rot_rad: f64) -> ClassicalElements {
        use crate::kepler::elements_from_state;
        use crate::propagator::StateVector;
        let prop = KeplerJ2::from_elements(a, epoch());
        let st = prop.propagate(epoch().plus_seconds(t_star));
        let radial = st.position.normalized();
        // Rodrigues rotation of the velocity about the radial axis keeps
        // speed and radius, changing only the plane.
        let v = st.velocity;
        let (s, c) = rot_rad.sin_cos();
        let v_rot = v * c + radial.cross(v) * s + radial * (radial.dot(v)) * (1.0 - c);
        let el_at_tstar = elements_from_state(&StateVector { position: st.position, velocity: v_rot });
        // Rewind the mean anomaly so the elements are valid at epoch().
        let n = el_at_tstar.mean_motion_rad_s();
        ClassicalElements {
            mean_anomaly_rad: crate::math::wrap_two_pi(el_at_tstar.mean_anomaly_rad - n * t_star),
            ..el_at_tstar
        }
    }

    #[test]
    fn constructed_collision_is_found() {
        // Orbit B passes through A's position at t* on a plane rotated by
        // 25 degrees — a true crossing conjunction. (The rewind ignores the
        // small J2 drift over t*, so the realized miss is near-zero, not
        // exactly zero.)
        let a = ClassicalElements::circular(550.0, deg_to_rad(53.0), 0.0, 0.0);
        let t_star = 2000.0;
        let b = crossing_orbit(&a, t_star, deg_to_rad(25.0));
        let cfg = ScreeningConfig { threshold_km: 20.0, ..Default::default() };
        let found = screen_all_pairs(&[a, b], epoch(), 2.0 * 3600.0, &cfg);
        assert!(!found.is_empty(), "constructed crossing must be detected");
        let c = &found[0];
        assert!(
            (c.tca_offset_s - t_star).abs() < 60.0,
            "TCA {} expected near {t_star}",
            c.tca_offset_s
        );
        assert!(c.miss_distance_km < 20.0, "miss {}", c.miss_distance_km);
    }

    #[test]
    fn screener_matches_brute_force() {
        let a = ClassicalElements::circular(550.0, deg_to_rad(53.0), 0.0, 0.0);
        let b = crossing_orbit(&a, 3000.0, deg_to_rad(40.0));
        let pa = KeplerJ2::from_elements(&a, epoch());
        let pb = KeplerJ2::from_elements(&b, epoch());
        // Brute force at 1 s resolution.
        let mut brute = f64::MAX;
        let mut t = 0.0;
        while t <= 2.0 * 3600.0 {
            let e = epoch().plus_seconds(t);
            let d = (pa.position_at(e) - pb.position_at(e)).norm();
            brute = brute.min(d);
            t += 1.0;
        }
        let cfg = ScreeningConfig { threshold_km: 50.0, ..Default::default() };
        let found = screen_pair(&pa, &pb, epoch(), 2.0 * 3600.0, &cfg).expect("found");
        // The refined minimum must be at least as deep as the sampled one
        // (the 1 s grid quantizes the approach by up to ~8 km at LEO
        // closing speeds), and never deeper than physics allows.
        assert!(
            found.miss_distance_km <= brute + 1e-6,
            "screener {} should not exceed sampled minimum {brute}",
            found.miss_distance_km
        );
        assert!(
            brute - found.miss_distance_km < 8.0,
            "refinement {} implausibly far below sampled minimum {brute}",
            found.miss_distance_km
        );
    }

    #[test]
    fn self_pair_excluded_and_sorted() {
        let spec = ShellSpec { planes: 3, sats_per_plane: 4, ..ShellSpec::starlink_like() };
        let els: Vec<ClassicalElements> = walker_delta(&spec, epoch()).iter().map(|s| s.elements).collect();
        let cfg = ScreeningConfig { threshold_km: 500.0, ..Default::default() };
        let found = screen_all_pairs(&els, epoch(), 3.0 * 3600.0, &cfg);
        for c in &found {
            assert!(c.sat_a < c.sat_b, "pair order");
        }
        for w in found.windows(2) {
            assert!(w[0].miss_distance_km <= w[1].miss_distance_km, "sorted by miss distance");
        }
    }

    #[test]
    fn walker_design_separation() {
        // A properly phased Walker shell keeps healthy in-shell separation:
        // no pair below 10 km in a day.
        let spec = ShellSpec { planes: 6, sats_per_plane: 6, phasing: 1, ..ShellSpec::starlink_like() };
        let els: Vec<ClassicalElements> = walker_delta(&spec, epoch()).iter().map(|s| s.elements).collect();
        let found = screen_all_pairs(&els, epoch(), 86_400.0, &ScreeningConfig::default());
        assert!(found.is_empty(), "phased Walker shell should be conjunction-free: {found:?}");
    }

    #[test]
    fn uncoordinated_shell_adds_conjunctions_coordinated_does_not() {
        // The paper's §1 congestion scenario: a second operator drops an
        // uncoordinated constellation on an occupied altitude. Model one
        // foreign satellite on a crossing orbit through the incumbent
        // shell vs one that joins the shell's own phasing.
        let spec = ShellSpec { planes: 4, sats_per_plane: 4, phasing: 1, ..ShellSpec::starlink_like() };
        let mut els: Vec<ClassicalElements> =
            walker_delta(&spec, epoch()).iter().map(|s| s.elements).collect();
        let incumbent = els.len();

        // Uncoordinated entrant: crosses satellite 0's track.
        let rogue = crossing_orbit(&els[0], 1500.0, deg_to_rad(30.0));
        let mut congested = els.clone();
        congested.push(rogue);
        let cfg = ScreeningConfig { threshold_km: 25.0, ..Default::default() };
        let found = screen_all_pairs(&congested, epoch(), 6.0 * 3600.0, &cfg);
        assert!(!found.is_empty(), "uncoordinated entrant must create conjunctions");
        assert!(
            found.iter().all(|c| c.sat_b == incumbent),
            "all conjunctions involve the entrant: {found:?}"
        );

        // Coordinated entrant: slots into the shell's empty phase space.
        els.push(ClassicalElements::circular(
            550.0,
            deg_to_rad(53.0),
            deg_to_rad(45.0), // between existing planes
            deg_to_rad(11.0),
        ));
        let clean = screen_all_pairs(&els, epoch(), 6.0 * 3600.0, &cfg);
        assert!(clean.is_empty(), "coordinated entrant stays clear: {clean:?}");

        let report = congestion_report(&found, congested.len(), 6.0 * 3600.0);
        assert!(report.rate_per_sat_day > 0.0);
        assert!(report.min_miss_km <= 25.0);
    }

    #[test]
    fn report_on_empty() {
        let r = congestion_report(&[], 10, 86_400.0);
        assert_eq!(r.conjunctions, 0);
        assert_eq!(r.rate_per_sat_day, 0.0);
        assert!(r.min_miss_km.is_infinite());
    }

    #[test]
    fn golden_refine_finds_parabola_min() {
        let f = |x: f64| (x - 3.7) * (x - 3.7) + 1.0;
        let (x, v) = golden_refine(&f, 0.0, 10.0);
        assert!((x - 3.7).abs() < 1e-3, "min at {x}");
        assert!((v - 1.0).abs() < 1e-6);
    }
}
