//! Classical orbital elements and the Kepler problem.
//!
//! [`ClassicalElements`] is the common currency between TLEs, the Walker
//! constellation generator, the placement optimizer, and the propagators.

use crate::earth::EARTH_MU_KM3_S2;
use crate::math::{wrap_two_pi, Vec3};
use crate::propagator::StateVector;
use serde::{Deserialize, Serialize};

/// Classical (Keplerian) orbital elements.
///
/// Angles are radians. The epoch is carried separately (see
/// [`crate::tle::Tle`] and the propagators).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ClassicalElements {
    /// Semi-major axis, km.
    pub semi_major_axis_km: f64,
    /// Eccentricity (0 = circular).
    pub eccentricity: f64,
    /// Inclination, radians.
    pub inclination_rad: f64,
    /// Right ascension of the ascending node (RAAN), radians.
    pub raan_rad: f64,
    /// Argument of perigee, radians.
    pub arg_perigee_rad: f64,
    /// Mean anomaly at epoch, radians.
    pub mean_anomaly_rad: f64,
}

impl ClassicalElements {
    /// Convenience constructor for a circular orbit.
    ///
    /// `phase_rad` is the argument of latitude (angle from the ascending
    /// node along the orbit), which for a circular orbit we store as the
    /// mean anomaly with zero argument of perigee.
    pub fn circular(altitude_km: f64, inclination_rad: f64, raan_rad: f64, phase_rad: f64) -> Self {
        ClassicalElements {
            semi_major_axis_km: crate::earth::EARTH_RADIUS_KM + altitude_km,
            eccentricity: 0.0,
            inclination_rad,
            raan_rad: wrap_two_pi(raan_rad),
            arg_perigee_rad: 0.0,
            mean_anomaly_rad: wrap_two_pi(phase_rad),
        }
    }

    /// Mean motion, radians/second.
    pub fn mean_motion_rad_s(&self) -> f64 {
        let a = self.semi_major_axis_km;
        (EARTH_MU_KM3_S2 / (a * a * a)).sqrt()
    }

    /// Mean motion in revolutions per (solar) day, the TLE convention.
    pub fn mean_motion_revs_day(&self) -> f64 {
        self.mean_motion_rad_s() * 86_400.0 / std::f64::consts::TAU
    }

    /// Orbital period, seconds.
    pub fn period_s(&self) -> f64 {
        std::f64::consts::TAU / self.mean_motion_rad_s()
    }

    /// Perigee altitude above the mean equatorial radius, km.
    pub fn perigee_altitude_km(&self) -> f64 {
        self.semi_major_axis_km * (1.0 - self.eccentricity) - crate::earth::EARTH_RADIUS_KM
    }

    /// Apogee altitude above the mean equatorial radius, km.
    pub fn apogee_altitude_km(&self) -> f64 {
        self.semi_major_axis_km * (1.0 + self.eccentricity) - crate::earth::EARTH_RADIUS_KM
    }

    /// Inertial (ECI/TEME) state vector at the given mean anomaly offset
    /// from epoch, for a pure two-body orbit.
    ///
    /// `delta_mean_anomaly_rad` is how far the mean anomaly has advanced
    /// past `self.mean_anomaly_rad`. RAAN and argument of perigee are taken
    /// as-is (secular drift is the propagator's job).
    pub fn state_at_mean_anomaly(&self, delta_mean_anomaly_rad: f64) -> StateVector {
        perifocal_to_eci(self, wrap_two_pi(self.mean_anomaly_rad + delta_mean_anomaly_rad))
    }
}

/// Solve Kepler's equation `M = E - e*sin(E)` for the eccentric anomaly `E`
/// using Newton–Raphson with a Halley fallback start.
///
/// Converges in < 10 iterations for all `e < 0.99`. Inputs and outputs in
/// radians; `mean_anomaly` may be any real, the result is wrapped to
/// `[0, 2pi)`.
pub fn solve_kepler(mean_anomaly: f64, eccentricity: f64) -> f64 {
    assert!((0.0..1.0).contains(&eccentricity), "elliptic orbits only, e={eccentricity}");
    let m = wrap_two_pi(mean_anomaly);
    if eccentricity < 1e-12 {
        return m;
    }
    // A good starting guess (Vallado): E0 = M + e*sin(M) works well for
    // moderate e; for high e near M=0 use E0 = M + e.
    let mut e_anom = if eccentricity > 0.8 { std::f64::consts::PI } else { m + eccentricity * m.sin() };
    for _ in 0..30 {
        let f = e_anom - eccentricity * e_anom.sin() - m;
        let fp = 1.0 - eccentricity * e_anom.cos();
        let delta = f / fp;
        e_anom -= delta;
        if delta.abs() < 1e-13 {
            break;
        }
    }
    wrap_two_pi(e_anom)
}

/// True anomaly from eccentric anomaly.
pub fn true_from_eccentric(eccentric_anomaly: f64, eccentricity: f64) -> f64 {
    let half = eccentric_anomaly / 2.0;
    let factor = ((1.0 + eccentricity) / (1.0 - eccentricity)).sqrt();
    wrap_two_pi(2.0 * (factor * half.tan()).atan())
}

/// Eccentric anomaly from true anomaly.
pub fn eccentric_from_true(true_anomaly: f64, eccentricity: f64) -> f64 {
    let half = true_anomaly / 2.0;
    let factor = ((1.0 - eccentricity) / (1.0 + eccentricity)).sqrt();
    wrap_two_pi(2.0 * (factor * half.tan()).atan())
}

/// Mean anomaly from eccentric anomaly (Kepler's equation, forward).
pub fn mean_from_eccentric(eccentric_anomaly: f64, eccentricity: f64) -> f64 {
    wrap_two_pi(eccentric_anomaly - eccentricity * eccentric_anomaly.sin())
}

/// Convert elements plus a mean anomaly into an ECI state vector via the
/// perifocal frame.
pub fn perifocal_to_eci(el: &ClassicalElements, mean_anomaly: f64) -> StateVector {
    let e = el.eccentricity;
    let e_anom = solve_kepler(mean_anomaly, e);
    let nu = true_from_eccentric(e_anom, e);
    let a = el.semi_major_axis_km;
    let p = a * (1.0 - e * e);
    let r_mag = p / (1.0 + e * nu.cos());
    // Position and velocity in the perifocal (PQW) frame.
    let (snu, cnu) = nu.sin_cos();
    let r_pqw = Vec3::new(r_mag * cnu, r_mag * snu, 0.0);
    let coef = (EARTH_MU_KM3_S2 / p).sqrt();
    let v_pqw = Vec3::new(-coef * snu, coef * (e + cnu), 0.0);
    // Rotate PQW -> ECI: R3(-RAAN) R1(-i) R3(-argp).
    let (so, co) = el.raan_rad.sin_cos();
    let (si, ci) = el.inclination_rad.sin_cos();
    let (sw, cw) = el.arg_perigee_rad.sin_cos();
    let rot = |v: Vec3| -> Vec3 {
        let x1 = cw * v.x - sw * v.y;
        let y1 = sw * v.x + cw * v.y;
        let z1 = v.z;
        let x2 = x1;
        let y2 = ci * y1 - si * z1;
        let z2 = si * y1 + ci * z1;
        Vec3::new(co * x2 - so * y2, so * x2 + co * y2, z2)
    };
    StateVector { position: rot(r_pqw), velocity: rot(v_pqw) }
}

/// Recover classical elements from an ECI state vector (the inverse of
/// [`perifocal_to_eci`]). Returns the elements and the mean anomaly encoded
/// in them (i.e. `mean_anomaly_rad` is the mean anomaly *at the state*).
pub fn elements_from_state(state: &StateVector) -> ClassicalElements {
    let mu = EARTH_MU_KM3_S2;
    let r = state.position;
    let v = state.velocity;
    let r_mag = r.norm();
    let v_mag = v.norm();
    let h = r.cross(v);
    let h_mag = h.norm();
    let n = Vec3::Z.cross(h); // node vector
    let n_mag = n.norm();
    let e_vec = (r * (v_mag * v_mag - mu / r_mag) - v * r.dot(v)) / mu;
    let e = e_vec.norm();
    let energy = v_mag * v_mag / 2.0 - mu / r_mag;
    let a = -mu / (2.0 * energy);
    let i = (h.z / h_mag).clamp(-1.0, 1.0).acos();
    let raan = if n_mag > 1e-12 {
        let mut o = (n.x / n_mag).clamp(-1.0, 1.0).acos();
        if n.y < 0.0 {
            o = std::f64::consts::TAU - o;
        }
        o
    } else {
        0.0
    };
    let argp = if n_mag > 1e-12 && e > 1e-12 {
        let mut w = (n.dot(e_vec) / (n_mag * e)).clamp(-1.0, 1.0).acos();
        if e_vec.z < 0.0 {
            w = std::f64::consts::TAU - w;
        }
        w
    } else {
        0.0
    };
    let nu = if e > 1e-12 {
        let mut t = (e_vec.dot(r) / (e * r_mag)).clamp(-1.0, 1.0).acos();
        if r.dot(v) < 0.0 {
            t = std::f64::consts::TAU - t;
        }
        t
    } else if n_mag > 1e-12 {
        // Circular inclined: use argument of latitude.
        let mut u = (n.dot(r) / (n_mag * r_mag)).clamp(-1.0, 1.0).acos();
        if r.z < 0.0 {
            u = std::f64::consts::TAU - u;
        }
        u
    } else {
        // Circular equatorial: true longitude.
        let mut l = (r.x / r_mag).clamp(-1.0, 1.0).acos();
        if r.y < 0.0 {
            l = std::f64::consts::TAU - l;
        }
        l
    };
    let e_anom = eccentric_from_true(nu, e.min(0.999_999));
    let m = mean_from_eccentric(e_anom, e.min(0.999_999));
    ClassicalElements {
        semi_major_axis_km: a,
        eccentricity: e,
        inclination_rad: i,
        raan_rad: raan,
        arg_perigee_rad: argp,
        mean_anomaly_rad: m,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::earth::EARTH_RADIUS_KM;
    use crate::math::deg_to_rad;

    fn starlink_elements() -> ClassicalElements {
        ClassicalElements::circular(546.0, deg_to_rad(53.0), deg_to_rad(40.0), deg_to_rad(10.0))
    }

    #[test]
    fn kepler_circular_is_identity() {
        for m in [0.0, 1.0, 3.0, 6.0] {
            assert!((solve_kepler(m, 0.0) - m).abs() < 1e-12);
        }
    }

    #[test]
    fn kepler_satisfies_equation() {
        for &e in &[0.001, 0.1, 0.5, 0.9, 0.97] {
            for k in 0..32 {
                let m = k as f64 * std::f64::consts::TAU / 32.0;
                let big_e = solve_kepler(m, e);
                let m_back = wrap_two_pi(big_e - e * big_e.sin());
                let diff = crate::math::wrap_pi(m_back - m);
                assert!(diff.abs() < 1e-10, "e={e} m={m}: diff={diff}");
            }
        }
    }

    #[test]
    fn anomaly_chain_roundtrip() {
        for &e in &[0.0, 0.05, 0.3, 0.7] {
            for k in 1..16 {
                let e_anom = k as f64 * std::f64::consts::TAU / 16.0;
                let nu = true_from_eccentric(e_anom, e);
                let back = eccentric_from_true(nu, e);
                let diff = crate::math::wrap_pi(back - e_anom);
                assert!(diff.abs() < 1e-10, "e={e} E={e_anom}: {diff}");
            }
        }
    }

    #[test]
    fn circular_orbit_radius_and_speed() {
        let el = starlink_elements();
        let st = el.state_at_mean_anomaly(0.0);
        assert!((st.position.norm() - (EARTH_RADIUS_KM + 546.0)).abs() < 1e-6);
        let v_expected = crate::earth::circular_speed_km_s(546.0);
        assert!((st.velocity.norm() - v_expected).abs() < 1e-6);
        // Velocity perpendicular to position on a circular orbit.
        assert!(st.position.dot(st.velocity).abs() < 1e-6);
    }

    #[test]
    fn inclination_bounds_latitude() {
        // A 53-degree inclined orbit never exceeds |z| = r*sin(53 deg).
        let el = starlink_elements();
        let r = el.semi_major_axis_km;
        let zmax = r * deg_to_rad(53.0).sin();
        for k in 0..200 {
            let st = el.state_at_mean_anomaly(k as f64 * 0.05);
            assert!(st.position.z.abs() <= zmax + 1e-6);
        }
    }

    #[test]
    fn elements_state_roundtrip_circular() {
        let el = starlink_elements();
        let st = el.state_at_mean_anomaly(0.0);
        let back = elements_from_state(&st);
        assert!((back.semi_major_axis_km - el.semi_major_axis_km).abs() < 1e-6);
        assert!(back.eccentricity < 1e-9);
        assert!((back.inclination_rad - el.inclination_rad).abs() < 1e-9);
        assert!((back.raan_rad - el.raan_rad).abs() < 1e-9);
        // For circular orbits argp=0 and mean anomaly equals argument of
        // latitude.
        let u = wrap_two_pi(back.arg_perigee_rad + back.mean_anomaly_rad);
        assert!(crate::math::wrap_pi(u - el.mean_anomaly_rad).abs() < 1e-7);
    }

    #[test]
    fn elements_state_roundtrip_eccentric() {
        let el = ClassicalElements {
            semi_major_axis_km: 7500.0,
            eccentricity: 0.12,
            inclination_rad: deg_to_rad(63.4),
            raan_rad: deg_to_rad(220.0),
            arg_perigee_rad: deg_to_rad(270.0),
            mean_anomaly_rad: deg_to_rad(35.0),
        };
        let st = el.state_at_mean_anomaly(0.0);
        let back = elements_from_state(&st);
        assert!((back.semi_major_axis_km - el.semi_major_axis_km).abs() < 1e-5);
        assert!((back.eccentricity - el.eccentricity).abs() < 1e-9);
        assert!((back.inclination_rad - el.inclination_rad).abs() < 1e-9);
        assert!((back.raan_rad - el.raan_rad).abs() < 1e-9);
        assert!((back.arg_perigee_rad - el.arg_perigee_rad).abs() < 1e-7);
        assert!(crate::math::wrap_pi(back.mean_anomaly_rad - el.mean_anomaly_rad).abs() < 1e-7);
    }

    #[test]
    fn period_of_starlink_orbit() {
        let el = starlink_elements();
        let p_min = el.period_s() / 60.0;
        assert!((p_min - 95.5).abs() < 0.5, "period {p_min} min");
    }

    #[test]
    fn angular_momentum_conserved_two_body() {
        let el = ClassicalElements {
            semi_major_axis_km: 7000.0,
            eccentricity: 0.2,
            inclination_rad: 1.0,
            raan_rad: 0.5,
            arg_perigee_rad: 1.5,
            mean_anomaly_rad: 0.0,
        };
        let h0 = {
            let s = el.state_at_mean_anomaly(0.0);
            s.position.cross(s.velocity)
        };
        for k in 1..20 {
            let s = el.state_at_mean_anomaly(k as f64 * 0.3);
            let h = s.position.cross(s.velocity);
            assert!((h - h0).norm() / h0.norm() < 1e-9);
        }
    }

    #[test]
    fn apsis_altitudes() {
        let el = ClassicalElements {
            semi_major_axis_km: 7000.0,
            eccentricity: 0.01,
            ..starlink_elements()
        };
        assert!(el.perigee_altitude_km() < el.apogee_altitude_km());
        let mean = (el.perigee_altitude_km() + el.apogee_altitude_km()) / 2.0;
        assert!((mean - (7000.0 - EARTH_RADIUS_KM)).abs() < 1e-9);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::math::wrap_pi;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn kepler_solution_satisfies_equation(
            m in 0.0..std::f64::consts::TAU,
            e in 0.0..0.95f64,
        ) {
            let big_e = solve_kepler(m, e);
            let back = wrap_two_pi(big_e - e * big_e.sin());
            prop_assert!(wrap_pi(back - m).abs() < 1e-9, "m={m} e={e}: residual {}", wrap_pi(back - m));
        }

        #[test]
        fn anomaly_conversions_invert(
            e_anom in 0.0..std::f64::consts::TAU,
            e in 0.0..0.9f64,
        ) {
            let nu = true_from_eccentric(e_anom, e);
            let back = eccentric_from_true(nu, e);
            prop_assert!(wrap_pi(back - e_anom).abs() < 1e-9);
        }

        #[test]
        fn state_roundtrip_recovers_elements(
            alt in 300.0..2000.0f64,
            ecc in 0.0..0.3f64,
            inc_deg in 1.0..179.0f64,
            raan_deg in 0.0..360.0f64,
            argp_deg in 0.0..360.0f64,
            m_deg in 0.0..360.0f64,
        ) {
            let a = crate::earth::EARTH_RADIUS_KM + alt;
            // Keep perigee above the atmosphere so the orbit is physical.
            prop_assume!(a * (1.0 - ecc) > crate::earth::EARTH_RADIUS_KM + 150.0);
            let el = ClassicalElements {
                semi_major_axis_km: a,
                eccentricity: ecc,
                inclination_rad: inc_deg.to_radians(),
                raan_rad: raan_deg.to_radians(),
                arg_perigee_rad: argp_deg.to_radians(),
                mean_anomaly_rad: m_deg.to_radians(),
            };
            let st = el.state_at_mean_anomaly(0.0);
            let back = elements_from_state(&st);
            prop_assert!((back.semi_major_axis_km - a).abs() < 1e-4, "a {} vs {}", back.semi_major_axis_km, a);
            prop_assert!((back.eccentricity - ecc).abs() < 1e-7);
            prop_assert!((back.inclination_rad - el.inclination_rad).abs() < 1e-8);
            // Angle recovery is degenerate for near-circular orbits, so
            // compare the composite (raan + argp + M) via positions instead:
            let st2 = back.state_at_mean_anomaly(0.0);
            prop_assert!((st2.position - st.position).norm() < 1e-3, "pos residual {}", (st2.position - st.position).norm());
        }

        #[test]
        fn vis_viva_holds_everywhere(
            alt in 300.0..2000.0f64,
            ecc in 0.0..0.2f64,
            m in 0.0..std::f64::consts::TAU,
        ) {
            let a = crate::earth::EARTH_RADIUS_KM + alt;
            prop_assume!(a * (1.0 - ecc) > crate::earth::EARTH_RADIUS_KM + 100.0);
            let el = ClassicalElements {
                semi_major_axis_km: a,
                eccentricity: ecc,
                inclination_rad: 0.9,
                raan_rad: 1.0,
                arg_perigee_rad: 2.0,
                mean_anomaly_rad: 0.0,
            };
            let st = el.state_at_mean_anomaly(m);
            let r = st.position.norm();
            let v2 = st.velocity.norm_sq();
            let vis_viva = crate::earth::EARTH_MU_KM3_S2 * (2.0 / r - 1.0 / a);
            prop_assert!((v2 - vis_viva).abs() / vis_viva < 1e-9);
        }
    }
}
