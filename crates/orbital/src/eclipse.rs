//! Sun geometry and eclipse prediction.
//!
//! A LEO satellite spends roughly a third of each orbit in Earth's shadow;
//! power budgets (and therefore sellable transponder time) follow the
//! sunlit fraction. This module provides a low-precision solar ephemeris
//! (Meeus-style, arcminute accuracy — far more than shadow geometry needs)
//! and the standard cylindrical-shadow eclipse test.

use crate::math::Vec3;
use crate::propagator::Propagator;
use crate::time::Epoch;

/// Astronomical unit, km.
pub const AU_KM: f64 = 149_597_870.7;

/// Low-precision solar position in the ECI (TEME-adjacent) frame, km.
///
/// Truncated Meeus: mean longitude + equation-of-center, rotated by the
/// mean obliquity. Good to ~0.01 deg over the decades around J2000.
pub fn sun_position_eci(epoch: Epoch) -> Vec3 {
    let t = epoch.centuries_since_j2000();
    // Mean longitude and mean anomaly of the Sun, degrees.
    let l0 = 280.460 + 36000.771 * t;
    let m = (357.5291 + 35999.0503 * t).to_radians();
    // Ecliptic longitude with the equation of center.
    let lambda = (l0 + 1.914_6 * m.sin() + 0.019_9 * (2.0 * m).sin()).to_radians();
    // Distance in AU.
    let r_au = 1.000_140 - 0.016_708 * m.cos() - 0.000_139 * (2.0 * m).cos();
    // Mean obliquity of the ecliptic.
    let eps = (23.439_291 - 0.013_004_2 * t).to_radians();
    let r = r_au * AU_KM;
    Vec3::new(
        r * lambda.cos(),
        r * lambda.sin() * eps.cos(),
        r * lambda.sin() * eps.sin(),
    )
}

/// Is an ECI position inside Earth's cylindrical shadow at `epoch`?
///
/// The cylinder model ignores penumbra (a few seconds of transition for
/// LEO) — standard for power analysis.
pub fn in_shadow(position_eci: Vec3, epoch: Epoch) -> bool {
    let sun = sun_position_eci(epoch).normalized();
    // Component of the position along the anti-sun axis.
    let along = position_eci.dot(-sun);
    if along <= 0.0 {
        return false; // on the day side
    }
    // Distance from the shadow axis.
    let radial = (position_eci + sun * along).norm();
    radial < crate::EARTH_RADIUS_KM
}

/// Fraction of the window `[start, start+duration]` a satellite spends in
/// sunlight, sampled every `step_s`.
pub fn sunlit_fraction(
    propagator: &dyn Propagator,
    start: Epoch,
    duration_s: f64,
    step_s: f64,
) -> f64 {
    assert!(step_s > 0.0 && duration_s > 0.0);
    let steps = (duration_s / step_s).ceil() as usize;
    let mut sunlit = 0usize;
    for k in 0..steps {
        let t = start.plus_seconds(k as f64 * step_s);
        if !in_shadow(propagator.position_at(t), t) {
            sunlit += 1;
        }
    }
    sunlit as f64 / steps as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kepler::ClassicalElements;
    use crate::math::deg_to_rad;
    use crate::propagator::KeplerJ2;

    fn epoch() -> Epoch {
        Epoch::from_ymdhms(2024, 6, 1, 0, 0, 0.0)
    }

    #[test]
    fn sun_distance_is_one_au() {
        for month in [1u32, 4, 7, 10] {
            let e = Epoch::from_ymdhms(2024, month, 15, 0, 0, 0.0);
            let d = sun_position_eci(e).norm() / AU_KM;
            assert!((0.975..1.025).contains(&d), "month {month}: {d} AU");
        }
    }

    #[test]
    fn earth_orbit_eccentricity_signature() {
        // Perihelion in January, aphelion in July.
        let jan = sun_position_eci(Epoch::from_ymdhms(2024, 1, 3, 0, 0, 0.0)).norm();
        let jul = sun_position_eci(Epoch::from_ymdhms(2024, 7, 4, 0, 0, 0.0)).norm();
        assert!(jan < jul, "perihelion {jan} < aphelion {jul}");
    }

    #[test]
    fn june_solstice_declination() {
        // Near the June solstice the Sun sits ~23.4 deg north.
        let e = Epoch::from_ymdhms(2024, 6, 20, 12, 0, 0.0);
        let s = sun_position_eci(e);
        let dec = (s.z / s.norm()).asin().to_degrees();
        assert!((dec - 23.4).abs() < 0.3, "declination {dec}");
    }

    #[test]
    fn shadow_is_antisolar() {
        let e = epoch();
        let sun_dir = sun_position_eci(e).normalized();
        // A LEO point directly behind Earth is in shadow...
        assert!(in_shadow(-sun_dir * 7000.0, e));
        // ...the sub-solar point is not...
        assert!(!in_shadow(sun_dir * 7000.0, e));
        // ...and a point far off-axis is sunlit even behind Earth.
        let off_axis = (-sun_dir * 7000.0) + orthogonal(sun_dir) * 9000.0;
        assert!(!in_shadow(off_axis, e));
    }

    fn orthogonal(v: Vec3) -> Vec3 {
        let cand = if v.x.abs() < 0.9 { Vec3::X } else { Vec3::Y };
        v.cross(cand).normalized()
    }

    #[test]
    fn leo_sunlit_fraction_typical() {
        // A 53-degree LEO orbit is sunlit ~55-75% of each orbit.
        let el = ClassicalElements::circular(550.0, deg_to_rad(53.0), 0.0, 0.0);
        let p = KeplerJ2::from_elements(&el, epoch());
        let f = sunlit_fraction(&p, epoch(), el.period_s(), 10.0);
        assert!((0.5..0.85).contains(&f), "sunlit fraction {f}");
    }

    #[test]
    fn dawn_dusk_orbit_mostly_sunlit() {
        // A sun-synchronous dawn-dusk plane (RAAN ~90 deg from the Sun)
        // rides the terminator and stays sunlit far longer than a noon
        // plane. Construct both and compare.
        let e = epoch();
        let sun = sun_position_eci(e);
        let sun_ra = sun.y.atan2(sun.x);
        let noon = ClassicalElements::circular(550.0, deg_to_rad(97.6), sun_ra, 0.0);
        let dawn_dusk = ClassicalElements::circular(
            550.0,
            deg_to_rad(97.6),
            sun_ra + std::f64::consts::FRAC_PI_2,
            0.0,
        );
        let f_noon = sunlit_fraction(&KeplerJ2::from_elements(&noon, e), e, noon.period_s(), 10.0);
        let f_dd = sunlit_fraction(
            &KeplerJ2::from_elements(&dawn_dusk, e),
            e,
            dawn_dusk.period_s(),
            10.0,
        );
        assert!(f_dd > f_noon, "dawn-dusk {f_dd} vs noon {f_noon}");
        // June's +23 deg solar declination keeps the plane normal from
        // pointing exactly at the Sun, so "mostly" rather than "always".
        assert!(f_dd > 0.75, "dawn-dusk orbits are mostly sunlit: {f_dd}");
    }

    #[test]
    fn eclipse_duration_minutes_scale() {
        // Shadow crossings for a 550 km orbit last roughly 20-40 minutes.
        let el = ClassicalElements::circular(550.0, deg_to_rad(53.0), 0.0, 0.0);
        let p = KeplerJ2::from_elements(&el, epoch());
        let period = el.period_s();
        let dark = (1.0 - sunlit_fraction(&p, epoch(), period, 5.0)) * period / 60.0;
        assert!((15.0..45.0).contains(&dark), "eclipse {dark} min per orbit");
    }
}
