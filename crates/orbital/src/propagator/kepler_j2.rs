//! Two-body propagation with secular J2 corrections.
//!
//! Earth's oblateness (the J2 zonal harmonic) causes three secular drifts
//! that matter enormously for constellation design:
//!
//! * **nodal regression** — the orbital plane's RAAN drifts westward for
//!   prograde orbits (~-5°/day for Starlink-class orbits), which is what
//!   makes the relative geometry of multi-plane constellations stable only
//!   when planes share inclination and altitude;
//! * **apsidal rotation** — the argument of perigee rotates;
//! * **mean-motion correction** — the effective mean motion differs slightly
//!   from the two-body value.
//!
//! This propagator applies those drifts linearly and then solves the
//! two-body problem. It is accurate to a few kilometers over a week for
//! near-circular LEO (the short-period J2 oscillations it omits are ±10 km
//! in radius, which moves link elevations by hundredths of a degree — far
//! below the elevation-mask granularity the coverage experiments use), and
//! it is several times faster than SGP4.

use crate::earth::{EARTH_J2, EARTH_RADIUS_KM};
use crate::kepler::{perifocal_to_eci, ClassicalElements};
use crate::math::wrap_two_pi;
use crate::propagator::{Propagator, StateVector};
use crate::time::Epoch;
use serde::{Deserialize, Serialize};

/// Two-body + secular-J2 analytic propagator.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct KeplerJ2 {
    elements: ClassicalElements,
    epoch: Epoch,
    /// Mean motion including the J2 secular correction, rad/s.
    mean_motion_rad_s: f64,
    /// RAAN drift rate, rad/s.
    raan_dot_rad_s: f64,
    /// Argument-of-perigee drift rate, rad/s.
    argp_dot_rad_s: f64,
}

impl KeplerJ2 {
    /// Build a propagator from classical elements valid at `epoch`.
    pub fn from_elements(elements: &ClassicalElements, epoch: Epoch) -> Self {
        let el = *elements;
        let n0 = el.mean_motion_rad_s();
        let e = el.eccentricity;
        let one_minus_e2 = 1.0 - e * e;
        let p = el.semi_major_axis_km * one_minus_e2;
        let k = 1.5 * EARTH_J2 * (EARTH_RADIUS_KM / p).powi(2);
        let cos_i = el.inclination_rad.cos();
        let cos2_i = cos_i * cos_i;
        let sqrt_1me2 = one_minus_e2.sqrt();
        // Standard secular J2 rates (e.g. Vallado 9.38-9.40).
        let raan_dot = -k * n0 * cos_i;
        let argp_dot = k * n0 * (2.0 - 2.5 * (1.0 - cos2_i));
        let m_dot = n0 * (1.0 + k * sqrt_1me2 * (1.0 - 1.5 * (1.0 - cos2_i)));
        KeplerJ2 {
            elements: el,
            epoch,
            mean_motion_rad_s: m_dot,
            raan_dot_rad_s: raan_dot,
            argp_dot_rad_s: argp_dot,
        }
    }

    /// The epoch elements this propagator was built from.
    pub fn elements(&self) -> &ClassicalElements {
        &self.elements
    }

    /// Osculating-style elements at a later epoch (secular terms applied).
    pub fn elements_at(&self, epoch: Epoch) -> ClassicalElements {
        let dt = epoch.seconds_since(&self.epoch);
        ClassicalElements {
            raan_rad: wrap_two_pi(self.elements.raan_rad + self.raan_dot_rad_s * dt),
            arg_perigee_rad: wrap_two_pi(self.elements.arg_perigee_rad + self.argp_dot_rad_s * dt),
            mean_anomaly_rad: wrap_two_pi(self.elements.mean_anomaly_rad + self.mean_motion_rad_s * dt),
            ..self.elements
        }
    }

    /// Nodal regression rate in degrees per day (useful for sanity checks
    /// and sun-synchronous design).
    pub fn raan_drift_deg_per_day(&self) -> f64 {
        self.raan_dot_rad_s.to_degrees() * 86_400.0
    }

    /// Nodal period (time between ascending-node crossings), seconds.
    pub fn nodal_period_s(&self) -> f64 {
        std::f64::consts::TAU / (self.mean_motion_rad_s + self.argp_dot_rad_s)
    }
}

impl Propagator for KeplerJ2 {
    fn propagate(&self, epoch: Epoch) -> StateVector {
        let el = self.elements_at(epoch);
        perifocal_to_eci(&el, el.mean_anomaly_rad)
    }

    fn epoch(&self) -> Epoch {
        self.epoch
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::math::{deg_to_rad, wrap_pi};

    fn epoch() -> Epoch {
        Epoch::from_ymdhms(2024, 6, 1, 0, 0, 0.0)
    }

    fn starlink() -> KeplerJ2 {
        let el = ClassicalElements::circular(546.0, deg_to_rad(53.0), deg_to_rad(100.0), 0.0);
        KeplerJ2::from_elements(&el, epoch())
    }

    #[test]
    fn radius_stays_circular() {
        let p = starlink();
        for m in (0..1440).step_by(10) {
            let st = p.propagate(epoch().plus_minutes(m as f64));
            assert!((st.altitude_km() - 546.0).abs() < 1e-6, "alt at {m} min");
        }
    }

    #[test]
    fn nodal_regression_westward_for_prograde() {
        let p = starlink();
        let rate = p.raan_drift_deg_per_day();
        // Starlink-class orbit: about -5 deg/day.
        assert!(rate < -4.0 && rate > -6.0, "raan rate {rate}");
    }

    #[test]
    fn nodal_regression_eastward_for_retrograde() {
        let el = ClassicalElements::circular(546.0, deg_to_rad(110.0), 0.0, 0.0);
        let p = KeplerJ2::from_elements(&el, epoch());
        assert!(p.raan_drift_deg_per_day() > 0.0);
    }

    #[test]
    fn polar_orbit_has_no_regression() {
        let el = ClassicalElements::circular(546.0, deg_to_rad(90.0), 0.0, 0.0);
        let p = KeplerJ2::from_elements(&el, epoch());
        assert!(p.raan_drift_deg_per_day().abs() < 1e-9);
    }

    #[test]
    fn sun_synchronous_inclination() {
        // At ~800 km, sun-synchronous (+0.9856 deg/day) needs ~98.6 deg.
        let el = ClassicalElements::circular(800.0, deg_to_rad(98.6), 0.0, 0.0);
        let p = KeplerJ2::from_elements(&el, epoch());
        let rate = p.raan_drift_deg_per_day();
        assert!((rate - 0.9856).abs() < 0.05, "rate {rate}");
    }

    #[test]
    fn raan_advance_matches_rate() {
        let p = starlink();
        let one_day = epoch().plus_days(1.0);
        let el1 = p.elements_at(one_day);
        let drift = wrap_pi(el1.raan_rad - p.elements().raan_rad).to_degrees();
        assert!((drift - p.raan_drift_deg_per_day()).abs() < 1e-9);
    }

    #[test]
    fn period_close_to_two_body() {
        let p = starlink();
        let n = p.mean_motion_rad_s;
        let n0 = p.elements().mean_motion_rad_s();
        // J2 correction is a fraction of a percent.
        assert!((n / n0 - 1.0).abs() < 2e-3);
    }

    #[test]
    fn ground_track_drifts_west_each_orbit() {
        // Fig 1a behaviour: successive orbits cross the equator further west.
        use crate::frames::subpoint;
        let p = starlink();
        let period = p.elements().period_s();
        let lon_at = |t: f64| {
            let e = epoch().plus_seconds(t);
            subpoint(p.propagate(e).position, e.gmst()).longitude_deg()
        };
        let l0 = lon_at(0.0);
        let l1 = lon_at(period);
        let delta = wrap_pi(deg_to_rad(l1 - l0)).to_degrees();
        // Earth rotates ~24 degrees east per 95.6-min orbit, so the track
        // moves ~24 degrees west (minus a small J2 term).
        assert!(delta < -20.0 && delta > -28.0, "drift per orbit {delta}");
    }

    #[test]
    fn propagation_is_deterministic() {
        let p = starlink();
        let t = epoch().plus_minutes(777.0);
        assert_eq!(p.propagate(t), p.propagate(t));
    }

    #[test]
    fn backward_propagation_consistent() {
        let p = starlink();
        let st0 = p.propagate(epoch());
        let back = p.propagate(epoch().plus_minutes(-95.6 * 3.0));
        // Three periods back should be close to the initial state (exact up
        // to the J2 drift of the plane).
        assert!((back.position.norm() - st0.position.norm()).abs() < 1e-6);
    }
}
