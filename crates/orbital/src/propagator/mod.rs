//! Orbit propagators.
//!
//! Two implementations of the [`Propagator`] trait:
//!
//! * [`KeplerJ2`] — two-body motion plus the secular effects of Earth's J2
//!   oblateness (nodal regression, apsidal rotation, mean-anomaly drift).
//!   Fast and smooth; the workhorse of the coverage simulator.
//! * [`Sgp4`] — the near-Earth SGP4 model of Spacetrack Report #3 (with the
//!   Vallado corrections), implemented from scratch. Operates directly on
//!   TLE mean elements including drag (B*). Used to propagate TLE inputs and
//!   to cross-validate `KeplerJ2`.
//!
//! Both output position/velocity in the TEME/ECI frame in km and km/s.

mod kepler_j2;
mod sgp4;

pub use kepler_j2::KeplerJ2;
pub use sgp4::{Sgp4, Sgp4Error};

use crate::math::Vec3;
use crate::time::Epoch;
use serde::{Deserialize, Serialize};

/// An inertial (TEME/ECI) position and velocity.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StateVector {
    /// Position, km.
    pub position: Vec3,
    /// Velocity, km/s.
    pub velocity: Vec3,
}

impl StateVector {
    /// Specific orbital energy, km^2/s^2 (negative for bound orbits).
    pub fn specific_energy(&self) -> f64 {
        self.velocity.norm_sq() / 2.0 - crate::earth::EARTH_MU_KM3_S2 / self.position.norm()
    }

    /// Specific angular momentum vector, km^2/s.
    pub fn angular_momentum(&self) -> Vec3 {
        self.position.cross(self.velocity)
    }

    /// Altitude above the mean equatorial radius, km. (Geodetic altitude
    /// differs by up to ~21 km with latitude; use `frames` for that.)
    pub fn altitude_km(&self) -> f64 {
        self.position.norm() - crate::earth::EARTH_RADIUS_KM
    }
}

/// Something that can produce an inertial state at an absolute epoch.
pub trait Propagator: Send + Sync {
    /// Inertial (TEME/ECI) state at `epoch`.
    fn propagate(&self, epoch: Epoch) -> StateVector;

    /// The epoch the underlying elements refer to.
    fn epoch(&self) -> Epoch;

    /// Position only, for callers that do not need velocity. Default
    /// implementation delegates to [`Propagator::propagate`].
    fn position_at(&self, epoch: Epoch) -> Vec3 {
        self.propagate(epoch).position
    }

    /// Batch positions over a uniform time grid: fills `out[k]` with the
    /// inertial position at `start + k * step_s` seconds.
    ///
    /// The default implementation evaluates [`Propagator::position_at`] at
    /// `start.plus_seconds(k as f64 * step_s)` for each step — the exact
    /// instants a `leosim` `TimeGrid` produces, so batch and per-step
    /// propagation are bit-identical. Implementations may override this to
    /// amortize per-epoch setup (trig series, drag terms) across the grid.
    fn positions_into(&self, start: Epoch, step_s: f64, out: &mut [Vec3]) {
        for (k, slot) in out.iter_mut().enumerate() {
            *slot = self.position_at(start.plus_seconds(k as f64 * step_s));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kepler::ClassicalElements;
    use crate::math::deg_to_rad;

    #[test]
    fn state_vector_energy_negative_for_leo() {
        let el = ClassicalElements::circular(550.0, deg_to_rad(53.0), 0.0, 0.0);
        let st = el.state_at_mean_anomaly(0.0);
        assert!(st.specific_energy() < 0.0);
        assert!((st.altitude_km() - 550.0).abs() < 1e-6);
    }

    #[test]
    fn batch_positions_match_per_step() {
        let epoch = Epoch::from_ymdhms(2024, 6, 1, 0, 0, 0.0);
        let el = ClassicalElements::circular(550.0, deg_to_rad(53.0), 0.3, 1.1);
        let p = KeplerJ2::from_elements(&el, epoch);
        let mut batch = vec![Vec3::ZERO; 32];
        p.positions_into(epoch, 60.0, &mut batch);
        for (k, got) in batch.iter().enumerate() {
            let want = p.position_at(epoch.plus_seconds(k as f64 * 60.0));
            // Bit-identical, not approximately equal: the ephemeris layer
            // relies on batch == per-step exactly.
            assert_eq!(*got, want, "step {k}");
        }
    }

    #[test]
    fn trait_object_usable() {
        let epoch = Epoch::from_ymdhms(2024, 6, 1, 0, 0, 0.0);
        let el = ClassicalElements::circular(550.0, deg_to_rad(53.0), 0.0, 0.0);
        let p: Box<dyn Propagator> = Box::new(KeplerJ2::from_elements(&el, epoch));
        let st = p.propagate(epoch.plus_minutes(10.0));
        assert!(st.position.is_finite());
        assert_eq!(p.position_at(epoch.plus_minutes(10.0)), st.position);
    }
}
