//! SGP4 near-Earth propagator, implemented from Spacetrack Report #3 with
//! the Vallado et al. (2006) corrections.
//!
//! SGP4 is the de-facto standard model for propagating TLE mean elements.
//! This implementation covers the near-Earth branch (orbital period
//! < 225 minutes), which is all LEO work needs; deep-space (SDP4) orbits are
//! rejected at construction time.
//!
//! Outputs are in the TEME frame (km, km/s), matching what
//! [`crate::frames::eci_to_ecef`] expects.

use crate::earth::{SGP4_EARTH_RADIUS_KM, SGP4_J2, SGP4_J3, SGP4_J4, SGP4_XKE};
use crate::math::{wrap_two_pi, Vec3};
use crate::propagator::{Propagator, StateVector};
use crate::time::Epoch;
use crate::tle::Tle;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Errors from SGP4 initialization or propagation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Sgp4Error {
    /// The orbit's period exceeds 225 minutes; the deep-space model (SDP4)
    /// would be required.
    DeepSpace,
    /// Mean elements are outside the model's validity range.
    InvalidElements(String),
    /// The satellite has decayed (radius below Earth's surface) at the
    /// requested time.
    Decayed,
}

impl fmt::Display for Sgp4Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Sgp4Error::DeepSpace => write!(f, "orbit period > 225 min requires SDP4 (deep space)"),
            Sgp4Error::InvalidElements(s) => write!(f, "invalid mean elements: {s}"),
            Sgp4Error::Decayed => write!(f, "satellite decayed"),
        }
    }
}

impl std::error::Error for Sgp4Error {}

/// The SGP4 propagator with all initialization-time constants precomputed.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Sgp4 {
    epoch: Epoch,
    // Mean elements at epoch (TLE units converted to radians / rad-per-min).
    ecco: f64,
    inclo: f64,
    nodeo: f64,
    argpo: f64,
    mo: f64,
    no_unkozai: f64, // rad/min
    bstar: f64,
    // Derived constants.
    isimp: bool,
    aycof: f64,
    con41: f64,
    cc1: f64,
    cc4: f64,
    cc5: f64,
    d2: f64,
    d3: f64,
    d4: f64,
    delmo: f64,
    eta: f64,
    argpdot: f64,
    omgcof: f64,
    sinmao: f64,
    t2cof: f64,
    t3cof: f64,
    t4cof: f64,
    t5cof: f64,
    x1mth2: f64,
    x7thm1: f64,
    mdot: f64,
    nodedot: f64,
    xlcof: f64,
    xmcof: f64,
    nodecf: f64,
}

impl Sgp4 {
    /// Initialize from a parsed TLE.
    pub fn from_tle(tle: &Tle) -> Result<Self, Sgp4Error> {
        Self::new(
            tle.epoch(),
            tle.inclination_deg.to_radians(),
            tle.raan_deg.to_radians(),
            tle.eccentricity,
            tle.arg_perigee_deg.to_radians(),
            tle.mean_anomaly_deg.to_radians(),
            tle.mean_motion_revs_day * std::f64::consts::TAU / 1440.0,
            tle.bstar,
        )
    }

    /// Initialize from raw mean elements.
    ///
    /// Angles in radians; `no_kozai` is the Kozai mean motion in rad/min
    /// (as encoded in a TLE); `bstar` in 1/earth-radii.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        epoch: Epoch,
        inclo: f64,
        nodeo: f64,
        ecco: f64,
        argpo: f64,
        mo: f64,
        no_kozai: f64,
        bstar: f64,
    ) -> Result<Self, Sgp4Error> {
        if !(0.0..1.0).contains(&ecco) {
            return Err(Sgp4Error::InvalidElements(format!("eccentricity {ecco}")));
        }
        if no_kozai <= 0.0 {
            return Err(Sgp4Error::InvalidElements(format!("mean motion {no_kozai}")));
        }

        let j2 = SGP4_J2;
        let j3 = SGP4_J3;
        let j4 = SGP4_J4;
        let j3oj2 = j3 / j2;
        let xke = SGP4_XKE;

        // --- Un-Kozai the mean motion ---------------------------------
        let cosio = inclo.cos();
        let cosio2 = cosio * cosio;
        let eccsq = ecco * ecco;
        let omeosq = 1.0 - eccsq;
        let rteosq = omeosq.sqrt();
        let con41 = 3.0 * cosio2 - 1.0;
        let ak = (xke / no_kozai).powf(2.0 / 3.0);
        let d1 = 0.75 * j2 * con41 / (rteosq * omeosq);
        let del1 = d1 / (ak * ak);
        let adel = ak * (1.0 - del1 * del1 - del1 * (1.0 / 3.0 + 134.0 * del1 * del1 / 81.0));
        let del = d1 / (adel * adel);
        let no_unkozai = no_kozai / (1.0 + del);

        let ao = (xke / no_unkozai).powf(2.0 / 3.0);
        let sinio = inclo.sin();
        let po = ao * omeosq;
        let con42 = 1.0 - 5.0 * cosio2;
        let posq = po * po;
        let rp = ao * (1.0 - ecco);

        // Reject deep-space orbits (period >= 225 min).
        if 2.0 * std::f64::consts::PI / no_unkozai >= 225.0 {
            return Err(Sgp4Error::DeepSpace);
        }

        let isimp = rp < 220.0 / SGP4_EARTH_RADIUS_KM + 1.0;

        // --- Atmospheric-drag fitting constants ------------------------
        let mut sfour = 78.0 / SGP4_EARTH_RADIUS_KM + 1.0;
        let mut qzms24 = ((120.0 - 78.0) / SGP4_EARTH_RADIUS_KM).powi(4);
        let perige = (rp - 1.0) * SGP4_EARTH_RADIUS_KM;
        if perige < 156.0 {
            sfour = if perige < 98.0 { 20.0 } else { perige - 78.0 };
            qzms24 = ((120.0 - sfour) / SGP4_EARTH_RADIUS_KM).powi(4);
            sfour = sfour / SGP4_EARTH_RADIUS_KM + 1.0;
        }

        let pinvsq = 1.0 / posq;
        let tsi = 1.0 / (ao - sfour);
        let eta = ao * ecco * tsi;
        let etasq = eta * eta;
        let eeta = ecco * eta;
        let psisq = (1.0 - etasq).abs();
        let coef = qzms24 * tsi.powi(4);
        let coef1 = coef / psisq.powf(3.5);
        let cc2 = coef1
            * no_unkozai
            * (ao * (1.0 + 1.5 * etasq + eeta * (4.0 + etasq))
                + 0.375 * j2 * tsi / psisq
                    * con41
                    * (8.0 + 3.0 * etasq * (8.0 + etasq)));
        let cc1 = bstar * cc2;
        let mut cc3 = 0.0;
        if ecco > 1.0e-4 {
            cc3 = -2.0 * coef * tsi * j3oj2 * no_unkozai * sinio / ecco;
        }
        let x1mth2 = 1.0 - cosio2;
        let cc4 = 2.0
            * no_unkozai
            * coef1
            * ao
            * omeosq
            * (eta * (2.0 + 0.5 * etasq) + ecco * (0.5 + 2.0 * etasq)
                - j2 * tsi / (ao * psisq)
                    * (-3.0 * con41 * (1.0 - 2.0 * eeta + etasq * (1.5 - 0.5 * eeta))
                        + 0.75
                            * x1mth2
                            * (2.0 * etasq - eeta * (1.0 + etasq))
                            * (2.0 * argpo).cos()));
        let cc5 = 2.0 * coef1 * ao * omeosq * (1.0 + 2.75 * (etasq + eeta) + eeta * etasq);

        let cosio4 = cosio2 * cosio2;
        let temp1 = 1.5 * j2 * pinvsq * no_unkozai;
        let temp2 = 0.5 * temp1 * j2 * pinvsq;
        let temp3 = -0.46875 * j4 * pinvsq * pinvsq * no_unkozai;
        let mdot = no_unkozai
            + 0.5 * temp1 * rteosq * con41
            + 0.0625 * temp2 * rteosq * (13.0 - 78.0 * cosio2 + 137.0 * cosio4);
        let argpdot = -0.5 * temp1 * con42
            + 0.0625 * temp2 * (7.0 - 114.0 * cosio2 + 395.0 * cosio4)
            + temp3 * (3.0 - 36.0 * cosio2 + 49.0 * cosio4);
        let xhdot1 = -temp1 * cosio;
        let nodedot = xhdot1
            + (0.5 * temp2 * (4.0 - 19.0 * cosio2) + 2.0 * temp3 * (3.0 - 7.0 * cosio2)) * cosio;
        let xpidot = argpdot + nodedot;
        let omgcof = bstar * cc3 * argpo.cos();
        let mut xmcof = 0.0;
        if ecco > 1.0e-4 {
            xmcof = -2.0 / 3.0 * coef * bstar / eeta;
        }
        let nodecf = 3.5 * omeosq * xhdot1 * cc1;
        let t2cof = 1.5 * cc1;
        // Avoid division by zero for inclo = 180 deg.
        let xlcof = if (1.0 + cosio).abs() > 1.5e-12 {
            -0.25 * j3oj2 * sinio * (3.0 + 5.0 * cosio) / (1.0 + cosio)
        } else {
            -0.25 * j3oj2 * sinio * (3.0 + 5.0 * cosio) / 1.5e-12
        };
        let aycof = -0.5 * j3oj2 * sinio;
        let delmo = (1.0 + eta * mo.cos()).powi(3);
        let sinmao = mo.sin();
        let x7thm1 = 7.0 * cosio2 - 1.0;

        let (mut d2, mut d3, mut d4) = (0.0, 0.0, 0.0);
        let (mut t3cof, mut t4cof, mut t5cof) = (0.0, 0.0, 0.0);
        if !isimp {
            let cc1sq = cc1 * cc1;
            d2 = 4.0 * ao * tsi * cc1sq;
            let temp = d2 * tsi * cc1 / 3.0;
            d3 = (17.0 * ao + sfour) * temp;
            d4 = 0.5 * temp * ao * tsi * (221.0 * ao + 31.0 * sfour) * cc1;
            t3cof = d2 + 2.0 * cc1sq;
            t4cof = 0.25 * (3.0 * d3 + cc1 * (12.0 * d2 + 10.0 * cc1sq));
            t5cof = 0.2
                * (3.0 * d4 + 12.0 * cc1 * d3 + 6.0 * d2 * d2 + 15.0 * cc1sq * (2.0 * d2 + cc1sq));
        }

        let _ = xpidot;
        Ok(Sgp4 {
            epoch,
            ecco,
            inclo,
            nodeo,
            argpo,
            mo,
            no_unkozai,
            bstar,
            isimp,
            aycof,
            con41,
            cc1,
            cc4,
            cc5,
            d2,
            d3,
            d4,
            delmo,
            eta,
            argpdot,
            omgcof,
            sinmao,
            t2cof,
            t3cof,
            t4cof,
            t5cof,
            x1mth2,
            x7thm1,
            mdot,
            nodedot,
            xlcof,
            xmcof,
            nodecf,
        })
    }

    /// Propagate to `tsince` minutes past the TLE epoch.
    pub fn propagate_minutes(&self, tsince: f64) -> Result<StateVector, Sgp4Error> {
        let x2o3 = 2.0 / 3.0;
        let xke = SGP4_XKE;
        let j2 = SGP4_J2;
        let vkmpersec = SGP4_EARTH_RADIUS_KM * xke / 60.0;

        // --- Secular gravity and atmospheric drag ----------------------
        let xmdf = self.mo + self.mdot * tsince;
        let argpdf = self.argpo + self.argpdot * tsince;
        let nodedf = self.nodeo + self.nodedot * tsince;
        let mut argpm = argpdf;
        let mut mm = xmdf;
        let t2 = tsince * tsince;
        let nodem = nodedf + self.nodecf * t2;
        let mut tempa = 1.0 - self.cc1 * tsince;
        let mut tempe = self.bstar * self.cc4 * tsince;
        let mut templ = self.t2cof * t2;

        if !self.isimp {
            let delomg = self.omgcof * tsince;
            let delmtemp = 1.0 + self.eta * xmdf.cos();
            let delm = self.xmcof * (delmtemp * delmtemp * delmtemp - self.delmo);
            let temp = delomg + delm;
            mm = xmdf + temp;
            argpm = argpdf - temp;
            let t3 = t2 * tsince;
            let t4 = t3 * tsince;
            tempa = tempa - self.d2 * t2 - self.d3 * t3 - self.d4 * t4;
            tempe += self.bstar * self.cc5 * (mm.sin() - self.sinmao);
            templ = templ + self.t3cof * t3 + t4 * (self.t4cof + tsince * self.t5cof);
        }

        let nm = self.no_unkozai;
        let mut em = self.ecco;
        let inclm = self.inclo;

        let am = ((xke / nm).powf(x2o3)) * tempa * tempa;
        let nm = xke / am.powf(1.5);
        em -= tempe;
        if !(-0.001..1.0).contains(&em) {
            return Err(Sgp4Error::InvalidElements(format!("eccentricity drifted to {em}")));
        }
        if em < 1.0e-6 {
            em = 1.0e-6;
        }
        let mm = mm + self.no_unkozai * templ;
        let xlm = mm + argpm + nodem;
        let nodem = wrap_two_pi(nodem);
        let argpm = wrap_two_pi(argpm);
        let xlm = wrap_two_pi(xlm);
        let mm = wrap_two_pi(xlm - argpm - nodem);

        // --- Long-period periodics -------------------------------------
        let sinim = inclm.sin();
        let cosim = inclm.cos();
        let ep = em;
        let xincp = inclm;
        let argpp = argpm;
        let nodep = nodem;
        let mp = mm;
        let sinip = sinim;
        let cosip = cosim;

        let axnl = ep * argpp.cos();
        let temp = 1.0 / (am * (1.0 - ep * ep));
        let aynl = ep * argpp.sin() + temp * self.aycof;
        let xl = mp + argpp + nodep + temp * self.xlcof * axnl;

        // --- Solve Kepler's equation ------------------------------------
        let u = wrap_two_pi(xl - nodep);
        let mut eo1 = u;
        let mut tem5: f64 = 9999.9;
        let mut ktr = 1;
        let (mut sineo1, mut coseo1) = eo1.sin_cos();
        while tem5.abs() >= 1.0e-12 && ktr <= 10 {
            (sineo1, coseo1) = eo1.sin_cos();
            tem5 = 1.0 - coseo1 * axnl - sineo1 * aynl;
            tem5 = (u - aynl * coseo1 + axnl * sineo1 - eo1) / tem5;
            if tem5.abs() >= 0.95 {
                tem5 = 0.95 * tem5.signum();
            }
            eo1 += tem5;
            ktr += 1;
        }

        // --- Short-period periodics -------------------------------------
        let ecose = axnl * coseo1 + aynl * sineo1;
        let esine = axnl * sineo1 - aynl * coseo1;
        let el2 = axnl * axnl + aynl * aynl;
        let pl = am * (1.0 - el2);
        if pl < 0.0 {
            return Err(Sgp4Error::InvalidElements("semi-latus rectum < 0".into()));
        }
        let rl = am * (1.0 - ecose);
        let rdotl = am.sqrt() * esine / rl;
        let rvdotl = pl.sqrt() / rl;
        let betal = (1.0 - el2).sqrt();
        let temp = esine / (1.0 + betal);
        let sinu = am / rl * (sineo1 - aynl - axnl * temp);
        let cosu = am / rl * (coseo1 - axnl + aynl * temp);
        let su = sinu.atan2(cosu);
        let sin2u = (cosu + cosu) * sinu;
        let cos2u = 1.0 - 2.0 * sinu * sinu;
        let temp = 1.0 / pl;
        let temp1 = 0.5 * j2 * temp;
        let temp2 = temp1 * temp;

        let cosisq = cosip * cosip;
        let con41 = self.con41;
        let x1mth2 = self.x1mth2;
        let x7thm1 = self.x7thm1;
        let mrt = rl * (1.0 - 1.5 * temp2 * betal * con41) + 0.5 * temp1 * x1mth2 * cos2u;
        let su = su - 0.25 * temp2 * x7thm1 * sin2u;
        let xnode = nodep + 1.5 * temp2 * cosip * sin2u;
        let xinc = xincp + 1.5 * temp2 * cosip * sinip * cos2u;
        let mvt = rdotl - nm * temp1 * x1mth2 * sin2u / xke;
        let rvdot = rvdotl + nm * temp1 * (x1mth2 * cos2u + 1.5 * con41) / xke;
        let _ = cosisq;

        // --- Orientation vectors ----------------------------------------
        let (sinsu, cossu) = su.sin_cos();
        let (snod, cnod) = xnode.sin_cos();
        let (sini, cosi) = xinc.sin_cos();
        let xmx = -snod * cosi;
        let xmy = cnod * cosi;
        let ux = xmx * sinsu + cnod * cossu;
        let uy = xmy * sinsu + snod * cossu;
        let uz = sini * sinsu;
        let vx = xmx * cossu - cnod * sinsu;
        let vy = xmy * cossu - snod * sinsu;
        let vz = sini * cossu;

        let position = Vec3::new(
            mrt * ux * SGP4_EARTH_RADIUS_KM,
            mrt * uy * SGP4_EARTH_RADIUS_KM,
            mrt * uz * SGP4_EARTH_RADIUS_KM,
        );
        let velocity = Vec3::new(
            (mvt * ux + rvdot * vx) * vkmpersec,
            (mvt * uy + rvdot * vy) * vkmpersec,
            (mvt * uz + rvdot * vz) * vkmpersec,
        );

        if mrt < 1.0 {
            return Err(Sgp4Error::Decayed);
        }
        Ok(StateVector { position, velocity })
    }
}

impl Propagator for Sgp4 {
    /// Propagate to an absolute epoch.
    ///
    /// # Panics
    /// Panics if the model reports decay or element blow-up at this time;
    /// use [`Sgp4::propagate_minutes`] for fallible propagation.
    fn propagate(&self, epoch: Epoch) -> StateVector {
        let tsince = epoch.seconds_since(&self.epoch) / 60.0;
        self.propagate_minutes(tsince)
            .unwrap_or_else(|e| panic!("SGP4 propagation failed at {epoch}: {e}"))
    }

    fn epoch(&self) -> Epoch {
        self.epoch
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kepler::ClassicalElements;
    use crate::math::deg_to_rad;
    use crate::propagator::KeplerJ2;

    fn epoch() -> Epoch {
        Epoch::from_ymdhms(2024, 6, 1, 0, 0, 0.0)
    }

    fn starlink_sgp4(bstar: f64) -> Sgp4 {
        let el = ClassicalElements::circular(546.0, deg_to_rad(53.0), deg_to_rad(100.0), deg_to_rad(20.0));
        Sgp4::new(
            epoch(),
            el.inclination_rad,
            el.raan_rad,
            el.eccentricity.max(1e-7),
            el.arg_perigee_rad,
            el.mean_anomaly_rad,
            el.mean_motion_rad_s() * 60.0,
            bstar,
        )
        .expect("valid elements")
    }

    #[test]
    fn rejects_deep_space() {
        // GEO: mean motion ~1 rev/day -> deep space.
        let n = 1.0027 * std::f64::consts::TAU / 1440.0;
        let r = Sgp4::new(epoch(), 0.1, 0.0, 0.001, 0.0, 0.0, n, 0.0);
        assert_eq!(r.unwrap_err(), Sgp4Error::DeepSpace);
    }

    #[test]
    fn rejects_bad_eccentricity() {
        let n = 15.0 * std::f64::consts::TAU / 1440.0;
        assert!(Sgp4::new(epoch(), 0.9, 0.0, 1.5, 0.0, 0.0, n, 0.0).is_err());
        assert!(Sgp4::new(epoch(), 0.9, 0.0, -0.1, 0.0, 0.0, n, 0.0).is_err());
    }

    #[test]
    fn altitude_within_band() {
        let s = starlink_sgp4(0.0);
        for m in (0..=1440).step_by(7) {
            let st = s.propagate_minutes(m as f64).unwrap();
            let alt = st.altitude_km();
            // SGP4 short-period terms wiggle +-15 km around the mean.
            assert!((520.0..575.0).contains(&alt), "alt {alt} at {m} min");
        }
    }

    #[test]
    fn speed_is_leo_speed() {
        let s = starlink_sgp4(0.0);
        let st = s.propagate_minutes(100.0).unwrap();
        let v = st.velocity.norm();
        assert!((v - 7.59).abs() < 0.05, "speed {v}");
    }

    #[test]
    fn agrees_with_kepler_j2_dragless() {
        // With bstar = 0 the differences from KeplerJ2 are the short-period
        // J2 oscillation (~10 km) plus a slow along-track drift from the
        // Kozai-vs-Brouwer mean-motion convention (~2.5 km per orbit).
        // Verify agreement within that budget over 24 hours.
        let el = ClassicalElements::circular(546.0, deg_to_rad(53.0), deg_to_rad(100.0), deg_to_rad(20.0));
        let kj2 = KeplerJ2::from_elements(&el, epoch());
        let s = starlink_sgp4(0.0);
        for m in (0..=1440).step_by(60) {
            let t = epoch().plus_minutes(m as f64);
            let p1 = kj2.propagate(t).position;
            let p2 = s.propagate_minutes(m as f64).unwrap().position;
            let d = (p1 - p2).norm();
            let budget = 25.0 + 0.05 * m as f64;
            assert!(d < budget, "divergence {d} km at {m} min (budget {budget})");
        }
    }

    #[test]
    fn drag_lowers_orbit() {
        let drag = starlink_sgp4(1.0e-3); // large B* to make the effect obvious
        let clean = starlink_sgp4(0.0);
        let day = 3.0 * 1440.0;
        let a_drag = drag.propagate_minutes(day).unwrap().position.norm();
        let a_clean = clean.propagate_minutes(day).unwrap().position.norm();
        // Compare mean radii over an orbit to wash out phase differences.
        let mean = |s: &Sgp4| -> f64 {
            (0..96)
                .map(|k| s.propagate_minutes(day + k as f64).unwrap().position.norm())
                .sum::<f64>()
                / 96.0
        };
        let (md, mc) = (mean(&drag), mean(&clean));
        assert!(md < mc, "drag mean radius {md} vs clean {mc}");
        let _ = (a_drag, a_clean);
    }

    #[test]
    fn nodal_regression_rate_matches_j2_theory() {
        let s = starlink_sgp4(0.0);
        // Node drift per day from the precomputed rate: rad/min -> deg/day.
        let rate_deg_day = s.nodedot.to_degrees() * 1440.0;
        // Compare with the analytic secular J2 rate from KeplerJ2
        // (about -4.5 deg/day for 53 deg / 550 km).
        let el = ClassicalElements::circular(546.0, deg_to_rad(53.0), 0.0, 0.0);
        let kj2 = KeplerJ2::from_elements(&el, epoch());
        let expected = kj2.raan_drift_deg_per_day();
        assert!(
            (rate_deg_day - expected).abs() < 0.05 * expected.abs(),
            "sgp4 {rate_deg_day} vs j2 theory {expected}"
        );
    }

    #[test]
    fn propagate_epoch_matches_minutes() {
        let s = starlink_sgp4(0.0);
        let t = epoch().plus_minutes(123.456);
        let a = s.propagate(t);
        let b = s.propagate_minutes(123.456).unwrap();
        assert!((a.position - b.position).norm() < 1e-9);
    }

    #[test]
    fn period_matches_mean_motion() {
        let s = starlink_sgp4(0.0);
        // Find successive ascending-node crossings (z sign change upward).
        let mut last_z = s.propagate_minutes(0.0).unwrap().position.z;
        let mut crossings = Vec::new();
        let dt = 0.05;
        let mut t = dt;
        while t < 300.0 && crossings.len() < 2 {
            let z = s.propagate_minutes(t).unwrap().position.z;
            if last_z < 0.0 && z >= 0.0 {
                crossings.push(t);
            }
            last_z = z;
            t += dt;
        }
        assert_eq!(crossings.len(), 2, "found node crossings");
        let period = crossings[1] - crossings[0];
        assert!((period - 95.6).abs() < 1.0, "nodal period {period} min");
    }

    #[test]
    fn eccentric_orbit_apsides() {
        // a = 7500 km, e = 0.08: perigee 6900 km (522 km alt), apogee 8100.
        let n = crate::earth::mean_motion_from_sma(7500.0) * std::f64::consts::TAU / 1440.0;
        let s = Sgp4::new(epoch(), deg_to_rad(63.4), 0.0, 0.08, deg_to_rad(270.0), 0.0, n, 0.0)
            .unwrap();
        let mut rmin = f64::MAX;
        let mut rmax: f64 = 0.0;
        for k in 0..2000 {
            let r = s.propagate_minutes(k as f64 * 0.1).unwrap().position.norm();
            rmin = rmin.min(r);
            rmax = rmax.max(r);
        }
        assert!((rmin - 6900.0).abs() < 100.0, "perigee {rmin}");
        assert!((rmax - 8100.0).abs() < 100.0, "apogee {rmax}");
    }
}
