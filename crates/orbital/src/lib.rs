//! # orbital — orbital mechanics substrate for MP-LEO
//!
//! This crate implements everything needed to simulate Low Earth Orbit
//! satellite constellations from first principles:
//!
//! * **Time systems** ([`time`]): UTC epochs, Julian dates, and Greenwich
//!   Mean Sidereal Time (GMST, IAU 1982 model) for Earth-rotation handling.
//! * **Math** ([`math`]): small fixed-size vector/matrix types tuned for
//!   astrodynamics work.
//! * **Reference frames** ([`frames`]): conversions between the inertial
//!   TEME/ECI frame, the rotating Earth-fixed ECEF frame, WGS-84 geodetic
//!   coordinates, and topocentric (SEZ) look angles.
//! * **Keplerian orbits** ([`kepler`]): classical orbital elements, the
//!   Kepler equation solver, and element/state-vector conversions.
//! * **Propagators** ([`propagator`]): a common [`propagator::Propagator`]
//!   trait with two implementations — a fast two-body + J2-secular
//!   propagator, and a from-scratch SGP4 (near-Earth, Spacetrack Report #3).
//! * **TLEs** ([`tle`]): parsing, formatting, checksumming, and synthesis of
//!   Two-Line Element sets, the lingua franca of orbit distribution.
//! * **Constellations** ([`constellation`]): Walker delta/star generators and
//!   a Starlink-like multi-shell synthesizer used throughout the MP-LEO
//!   experiments.
//! * **Ground geometry** ([`ground`]): ground sites, elevation-mask
//!   visibility predicates, and satellite pass prediction.
//!
//! The crate is deliberately dependency-light (only `serde` for data
//! interchange) so it can serve as the trusted computational base for both
//! the simulator (`leosim`) and the decentralized protocol's independent
//! proof-of-coverage verification (`dcp`).
//!
//! ## Quick example
//!
//! ```
//! use orbital::constellation::{ShellSpec, walker_delta};
//! use orbital::propagator::{KeplerJ2, Propagator};
//! use orbital::time::Epoch;
//! use orbital::frames::{eci_to_ecef, ecef_to_geodetic};
//!
//! let epoch = Epoch::from_ymdhms(2024, 6, 1, 0, 0, 0.0);
//! let shell = ShellSpec::starlink_like();
//! let sats = walker_delta(&shell, epoch);
//! let prop = KeplerJ2::from_elements(&sats[0].elements, epoch);
//! let state = prop.propagate(epoch.plus_seconds(600.0));
//! let gmst = epoch.plus_seconds(600.0).gmst();
//! let ecef = eci_to_ecef(state.position, gmst);
//! let geo = ecef_to_geodetic(ecef);
//! assert!(geo.altitude_km > 400.0 && geo.altitude_km < 700.0);
//! ```

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod conjunction;
pub mod constellation;
pub mod earth;
pub mod eclipse;
pub mod frames;
pub mod ground;
pub mod kepler;
pub mod maneuver;
pub mod math;
pub mod od;
pub mod propagator;
pub mod time;
pub mod tle;

pub use earth::{EARTH_MU_KM3_S2, EARTH_RADIUS_KM};
pub use frames::{ecef_to_geodetic, eci_to_ecef, geodetic_to_ecef, Geodetic, LookAngles};
pub use kepler::ClassicalElements;
pub use math::Vec3;
pub use propagator::{KeplerJ2, Propagator, Sgp4, StateVector};
pub use time::Epoch;
pub use tle::Tle;
