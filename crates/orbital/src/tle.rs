//! Two-Line Element (TLE) sets: parsing, formatting, and synthesis.
//!
//! TLEs are the interchange format the paper's simulator (CosmicBeats)
//! consumes, and the format in which constellation operators publish
//! ephemerides. This module implements the full fixed-column NORAD format,
//! including the assumed-decimal-point fields and the mod-10 checksum, plus
//! synthesis of TLEs from [`ClassicalElements`] so the Walker generator can
//! emit constellations as standard TLE text.

use crate::kepler::ClassicalElements;
use crate::math::wrap_two_pi;
use crate::time::Epoch;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A parsed Two-Line Element set (mean elements in TLE conventions).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Tle {
    /// Satellite name (line 0), if present.
    pub name: String,
    /// NORAD catalog number.
    pub norad_id: u32,
    /// Classification character (usually 'U').
    pub classification: char,
    /// International designator (launch year/number/piece), trimmed.
    pub intl_designator: String,
    /// Epoch year (full four-digit year).
    pub epoch_year: i32,
    /// Epoch day of year with fraction (1.0 = Jan 1 00:00 UTC).
    pub epoch_day: f64,
    /// First derivative of mean motion / 2, revs/day^2.
    pub ndot_over_2: f64,
    /// Second derivative of mean motion / 6, revs/day^3.
    pub nddot_over_6: f64,
    /// B* drag term, 1/earth-radii.
    pub bstar: f64,
    /// Element set number.
    pub element_number: u32,
    /// Inclination, degrees.
    pub inclination_deg: f64,
    /// Right ascension of the ascending node, degrees.
    pub raan_deg: f64,
    /// Eccentricity (the TLE field has an assumed leading decimal point).
    pub eccentricity: f64,
    /// Argument of perigee, degrees.
    pub arg_perigee_deg: f64,
    /// Mean anomaly, degrees.
    pub mean_anomaly_deg: f64,
    /// Mean motion, revolutions per day.
    pub mean_motion_revs_day: f64,
    /// Revolution number at epoch.
    pub rev_number: u32,
}

/// Errors from TLE parsing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TleError {
    /// Input did not contain two element lines.
    MissingLines,
    /// A line was shorter than the mandatory 69 columns.
    LineTooShort(u8),
    /// A line did not start with the expected line number.
    BadLineNumber(u8),
    /// The mod-10 checksum failed for the given line.
    ChecksumMismatch {
        /// Which line (1 or 2).
        line: u8,
        /// Checksum stated in the TLE.
        expected: u32,
        /// Checksum computed over the line.
        computed: u32,
    },
    /// The catalog numbers of line 1 and line 2 disagree.
    CatalogMismatch,
    /// A numeric field failed to parse; the string names the field.
    BadField(String),
}

impl fmt::Display for TleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TleError::MissingLines => write!(f, "expected two TLE lines"),
            TleError::LineTooShort(l) => write!(f, "line {l} shorter than 69 columns"),
            TleError::BadLineNumber(l) => write!(f, "line {l} does not start with '{l}'"),
            TleError::ChecksumMismatch { line, expected, computed } => {
                write!(f, "line {line} checksum mismatch: stated {expected}, computed {computed}")
            }
            TleError::CatalogMismatch => write!(f, "catalog numbers of lines 1 and 2 differ"),
            TleError::BadField(name) => write!(f, "failed to parse field {name}"),
        }
    }
}

impl std::error::Error for TleError {}

/// Compute the NORAD mod-10 checksum of the first 68 columns of a line:
/// digits count as their value, '-' counts as 1, all else as 0.
pub fn checksum(line: &str) -> u32 {
    line.chars()
        .take(68)
        .map(|c| match c {
            '0'..='9' => c as u32 - '0' as u32,
            '-' => 1,
            _ => 0,
        })
        .sum::<u32>()
        % 10
}

fn field<T: std::str::FromStr>(line: &str, range: std::ops::Range<usize>, name: &str) -> Result<T, TleError> {
    line.get(range)
        .map(str::trim)
        .filter(|s| !s.is_empty())
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| TleError::BadField(name.to_string()))
}

/// Parse a field with an assumed decimal point and exponent, e.g.
/// `" 12345-4"` -> `0.12345e-4`, `"-11606-4"` -> `-0.11606e-4`.
fn assumed_decimal(s: &str) -> Option<f64> {
    let s = s.trim();
    if s.is_empty() {
        return Some(0.0);
    }
    let (sign, rest) = match s.as_bytes()[0] {
        b'-' => (-1.0, &s[1..]),
        b'+' => (1.0, &s[1..]),
        _ => (1.0, s),
    };
    // Split mantissa and exponent; exponent sign is mandatory in real TLEs
    // but tolerate its absence.
    let exp_pos = rest.rfind(['-', '+'])?;
    let (mant, exp) = if exp_pos == 0 { (rest, "0") } else { rest.split_at(exp_pos) };
    let mant_val: f64 = format!("0.{}", mant.trim()).parse().ok()?;
    let exp_val: i32 = exp.parse().ok()?;
    Some(sign * mant_val * 10f64.powi(exp_val))
}

fn format_assumed_decimal(v: f64) -> String {
    if v == 0.0 {
        return " 00000+0".to_string();
    }
    let sign = if v < 0.0 { '-' } else { ' ' };
    let mut a = v.abs();
    let mut exp = 0i32;
    while a < 0.1 {
        a *= 10.0;
        exp -= 1;
    }
    while a >= 1.0 {
        a /= 10.0;
        exp += 1;
    }
    let mant = (a * 100_000.0).round() as u32;
    let (mant, exp) = if mant == 100_000 { (10_000, exp + 1) } else { (mant, exp) };
    let esign = if exp < 0 { '-' } else { '+' };
    format!("{sign}{mant:05}{esign}{}", exp.abs())
}

impl Tle {
    /// Parse a TLE from text. Accepts an optional name line (line 0)
    /// followed by the two element lines; blank lines are ignored.
    pub fn parse(text: &str) -> Result<Tle, TleError> {
        let lines: Vec<&str> = text.lines().map(str::trim_end).filter(|l| !l.trim().is_empty()).collect();
        let (name, l1, l2) = match lines.len() {
            0 | 1 => return Err(TleError::MissingLines),
            2 => (String::new(), lines[0], lines[1]),
            _ => (lines[0].trim().to_string(), lines[1], lines[2]),
        };
        Self::parse_lines(&name, l1, l2)
    }

    /// Parse from explicit name and element lines.
    pub fn parse_lines(name: &str, l1: &str, l2: &str) -> Result<Tle, TleError> {
        for (idx, line) in [(1u8, l1), (2u8, l2)] {
            if line.len() < 69 {
                return Err(TleError::LineTooShort(idx));
            }
            if !line.starts_with(char::from(b'0' + idx)) {
                return Err(TleError::BadLineNumber(idx));
            }
            let stated: u32 = line[68..69].parse().map_err(|_| TleError::BadField(format!("checksum{idx}")))?;
            let computed = checksum(line);
            if stated != computed {
                return Err(TleError::ChecksumMismatch { line: idx, expected: stated, computed });
            }
        }

        let norad1: u32 = field(l1, 2..7, "norad_id")?;
        let norad2: u32 = field(l2, 2..7, "norad_id(2)")?;
        if norad1 != norad2 {
            return Err(TleError::CatalogMismatch);
        }
        let classification = l1.as_bytes()[7] as char;
        let intl_designator = l1[9..17].trim().to_string();
        let epoch_yy: u32 = field(l1, 18..20, "epoch_year")?;
        let epoch_year = if epoch_yy < 57 { 2000 + epoch_yy as i32 } else { 1900 + epoch_yy as i32 };
        let epoch_day: f64 = field(l1, 20..32, "epoch_day")?;
        // ndot field carries an explicit decimal point but may start with
        // '+'/'-'/' '.
        let ndot_str = l1[33..43].trim();
        let ndot_over_2: f64 = ndot_str.parse().map_err(|_| TleError::BadField("ndot".into()))?;
        let nddot_over_6 = assumed_decimal(&l1[44..52]).ok_or_else(|| TleError::BadField("nddot".into()))?;
        let bstar = assumed_decimal(&l1[53..61]).ok_or_else(|| TleError::BadField("bstar".into()))?;
        let element_number: u32 = field(l1, 64..68, "element_number").unwrap_or(0);

        let inclination_deg: f64 = field(l2, 8..16, "inclination")?;
        let raan_deg: f64 = field(l2, 17..25, "raan")?;
        let ecc_str = l2[26..33].trim();
        let eccentricity: f64 = format!("0.{ecc_str}").parse().map_err(|_| TleError::BadField("eccentricity".into()))?;
        let arg_perigee_deg: f64 = field(l2, 34..42, "arg_perigee")?;
        let mean_anomaly_deg: f64 = field(l2, 43..51, "mean_anomaly")?;
        let mean_motion_revs_day: f64 = field(l2, 52..63, "mean_motion")?;
        let rev_number: u32 = field(l2, 63..68, "rev_number").unwrap_or(0);

        Ok(Tle {
            name: name.to_string(),
            norad_id: norad1,
            classification,
            intl_designator,
            epoch_year,
            epoch_day,
            ndot_over_2,
            nddot_over_6,
            bstar,
            element_number,
            inclination_deg,
            raan_deg,
            eccentricity,
            arg_perigee_deg,
            mean_anomaly_deg,
            mean_motion_revs_day,
            rev_number,
        })
    }

    /// The absolute epoch of these elements.
    pub fn epoch(&self) -> Epoch {
        Epoch::from_year_doy(self.epoch_year, self.epoch_day)
    }

    /// Convert the TLE mean elements to [`ClassicalElements`] using the
    /// two-body relation between mean motion and semi-major axis.
    ///
    /// Note: TLE mean elements are *Kozai* mean elements, so the recovered
    /// semi-major axis differs from the SGP4-internal (Brouwer) value by a
    /// few km — fine for geometry seeding, which is all this is used for.
    pub fn to_elements(&self) -> ClassicalElements {
        ClassicalElements {
            semi_major_axis_km: crate::earth::sma_from_mean_motion(self.mean_motion_revs_day),
            eccentricity: self.eccentricity,
            inclination_rad: self.inclination_deg.to_radians(),
            raan_rad: wrap_two_pi(self.raan_deg.to_radians()),
            arg_perigee_rad: wrap_two_pi(self.arg_perigee_deg.to_radians()),
            mean_anomaly_rad: wrap_two_pi(self.mean_anomaly_deg.to_radians()),
        }
    }

    /// Synthesize a TLE from classical elements at an epoch.
    ///
    /// The drag-related fields are zeroed (synthetic constellations are
    /// propagated drag-free), and bookkeeping fields take the provided
    /// identifiers.
    pub fn from_elements(name: &str, norad_id: u32, elements: &ClassicalElements, epoch: Epoch) -> Tle {
        Tle {
            name: name.to_string(),
            norad_id,
            classification: 'U',
            intl_designator: format!("{:02}{:03}A", epoch.year() % 100, norad_id % 1000),
            epoch_year: epoch.year(),
            epoch_day: epoch.day_of_year(),
            ndot_over_2: 0.0,
            nddot_over_6: 0.0,
            bstar: 0.0,
            element_number: 1,
            inclination_deg: elements.inclination_rad.to_degrees(),
            raan_deg: wrap_two_pi(elements.raan_rad).to_degrees(),
            eccentricity: elements.eccentricity,
            arg_perigee_deg: wrap_two_pi(elements.arg_perigee_rad).to_degrees(),
            mean_anomaly_deg: wrap_two_pi(elements.mean_anomaly_rad).to_degrees(),
            mean_motion_revs_day: elements.mean_motion_revs_day(),
            rev_number: 0,
        }
    }

    /// Format as the canonical two fixed-width lines (without the name).
    pub fn format_lines(&self) -> (String, String) {
        let yy = self.epoch_year % 100;
        let mut l1 = format!(
            "1 {:05}{} {:<8} {:02}{:012.8} {}{:.8} {} {} 0 {:4}",
            self.norad_id,
            self.classification,
            self.intl_designator,
            yy,
            self.epoch_day,
            if self.ndot_over_2 < 0.0 { "-" } else { " " },
            self.ndot_over_2.abs(),
            format_assumed_decimal(self.nddot_over_6),
            format_assumed_decimal(self.bstar),
            self.element_number % 10_000,
        );
        // The ndot field must occupy exactly 10 columns: sign + ".NNNNNNNN".
        // Rebuild precisely to the column spec to be safe.
        let ndot_field = {
            let sign = if self.ndot_over_2 < 0.0 { '-' } else { ' ' };
            let frac = format!("{:.8}", self.ndot_over_2.abs());
            // strip leading "0" of "0.xxxxxxxx"
            format!("{sign}{}", &frac[1..])
        };
        l1 = format!(
            "1 {:05}{} {:<8} {:02}{:012.8} {} {} {} 0 {:4}",
            self.norad_id,
            self.classification,
            self.intl_designator,
            yy,
            self.epoch_day,
            ndot_field,
            format_assumed_decimal(self.nddot_over_6),
            format_assumed_decimal(self.bstar),
            self.element_number % 10_000,
        );
        l1.truncate(68);
        while l1.len() < 68 {
            l1.push(' ');
        }
        let ecc7 = format!("{:07}", (self.eccentricity * 1e7).round() as u64);
        let mut l2 = format!(
            "2 {:05} {:8.4} {:8.4} {} {:8.4} {:8.4} {:11.8}{:5}",
            self.norad_id,
            self.inclination_deg,
            self.raan_deg,
            ecc7,
            self.arg_perigee_deg,
            self.mean_anomaly_deg,
            self.mean_motion_revs_day,
            self.rev_number % 100_000,
        );
        l2.truncate(68);
        while l2.len() < 68 {
            l2.push(' ');
        }
        (format!("{l1}{}", checksum(&l1)), format!("{l2}{}", checksum(&l2)))
    }
}

impl fmt::Display for Tle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let (l1, l2) = self.format_lines();
        if self.name.is_empty() {
            write!(f, "{l1}\n{l2}")
        } else {
            write!(f, "{}\n{l1}\n{l2}", self.name)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::math::deg_to_rad;

    // A real historical ISS TLE (checksums valid).
    const ISS: &str = "ISS (ZARYA)\n\
        1 25544U 98067A   08264.51782528 -.00002182  00000-0 -11606-4 0  2927\n\
        2 25544  51.6416 247.4627 0006703 130.5360 325.0288 15.72125391563537";

    #[test]
    fn parse_iss() {
        let t = Tle::parse(ISS).expect("parse");
        assert_eq!(t.name, "ISS (ZARYA)");
        assert_eq!(t.norad_id, 25544);
        assert_eq!(t.classification, 'U');
        assert_eq!(t.intl_designator, "98067A");
        assert_eq!(t.epoch_year, 2008);
        assert!((t.epoch_day - 264.517_825_28).abs() < 1e-9);
        assert!((t.ndot_over_2 - (-0.00002182)).abs() < 1e-12);
        assert!((t.bstar - (-0.11606e-4)).abs() < 1e-12);
        assert!((t.inclination_deg - 51.6416).abs() < 1e-9);
        assert!((t.raan_deg - 247.4627).abs() < 1e-9);
        assert!((t.eccentricity - 0.0006703).abs() < 1e-12);
        assert!((t.mean_motion_revs_day - 15.721_253_91).abs() < 1e-9);
        assert_eq!(t.rev_number, 56353);
    }

    #[test]
    fn checksum_known_lines() {
        let l1 = "1 25544U 98067A   08264.51782528 -.00002182  00000-0 -11606-4 0  2927";
        assert_eq!(checksum(l1), 7);
        let l2 = "2 25544  51.6416 247.4627 0006703 130.5360 325.0288 15.72125391563537";
        assert_eq!(checksum(l2), 7);
    }

    #[test]
    fn rejects_corrupted_checksum() {
        let bad = ISS.replace("  2927", "  2920");
        match Tle::parse(&bad) {
            Err(TleError::ChecksumMismatch { line: 1, .. }) => {}
            other => panic!("expected checksum mismatch, got {other:?}"),
        }
    }

    #[test]
    fn rejects_short_line() {
        assert_eq!(Tle::parse("1 foo\n2 bar"), Err(TleError::LineTooShort(1)));
    }

    #[test]
    fn rejects_catalog_mismatch() {
        let lines: Vec<&str> = ISS.lines().collect();
        let l2 = lines[2].replace("2 25544", "2 25545");
        // Fix the checksum for the altered line.
        let body = &l2[..68];
        let l2 = format!("{body}{}", checksum(body));
        match Tle::parse_lines("x", lines[1], &l2) {
            Err(TleError::CatalogMismatch) => {}
            other => panic!("expected catalog mismatch, got {other:?}"),
        }
    }

    #[test]
    fn assumed_decimal_cases() {
        assert!((assumed_decimal(" 12345-4").unwrap() - 0.12345e-4).abs() < 1e-15);
        assert!((assumed_decimal("-11606-4").unwrap() - (-0.11606e-4)).abs() < 1e-15);
        assert!((assumed_decimal(" 00000-0").unwrap()).abs() < 1e-15);
        assert!((assumed_decimal(" 34123+2").unwrap() - 34.123).abs() < 1e-10);
    }

    #[test]
    fn assumed_decimal_format_roundtrip() {
        for v in [0.0, 0.12345e-4, -0.11606e-4, 0.5e-3, -0.99999e-6] {
            let s = format_assumed_decimal(v);
            assert_eq!(s.len(), 8, "field {s:?} must be 8 cols");
            let back = assumed_decimal(&s).unwrap();
            assert!((back - v).abs() <= v.abs() * 1e-4 + 1e-12, "{v} -> {s} -> {back}");
        }
    }

    #[test]
    fn epoch_year_windowing() {
        let t = Tle::parse(ISS).unwrap();
        assert_eq!(t.epoch_year, 2008);
        // Years >= 57 are 19xx.
        let l1 = "1 00005U 58002B   00179.78495062  .00000023  00000-0  28098-4 0  4753";
        let l2 = "2 00005  34.2682 348.7242 1859667 331.7664  19.3264 10.82419157413667";
        let t2 = Tle::parse_lines("VANGUARD", l1, l2).unwrap();
        assert_eq!(t2.epoch_year, 2000);
        assert_eq!(t2.norad_id, 5);
    }

    #[test]
    fn format_roundtrip_synthetic() {
        let epoch = Epoch::from_ymdhms(2024, 6, 1, 12, 0, 0.0);
        let el = ClassicalElements::circular(546.0, deg_to_rad(53.0), deg_to_rad(123.4), deg_to_rad(77.0));
        let t = Tle::from_elements("MPLEO-1", 90001, &el, epoch);
        let text = t.to_string();
        let back = Tle::parse(&text).expect("reparse synthesized TLE");
        assert_eq!(back.name, "MPLEO-1");
        assert_eq!(back.norad_id, 90001);
        assert!((back.inclination_deg - 53.0).abs() < 1e-4);
        assert!((back.raan_deg - 123.4).abs() < 1e-4);
        assert!((back.mean_anomaly_deg - 77.0).abs() < 1e-4);
        assert!((back.mean_motion_revs_day - el.mean_motion_revs_day()).abs() < 1e-7);
        assert!(back.eccentricity < 1e-6);
        // Epoch survives to sub-second accuracy.
        assert!(back.epoch().seconds_since(&epoch).abs() < 0.5);
    }

    #[test]
    fn elements_roundtrip_through_tle() {
        let epoch = Epoch::from_ymdhms(2024, 6, 1, 0, 0, 0.0);
        let el = ClassicalElements {
            semi_major_axis_km: 6924.0,
            eccentricity: 0.0012,
            inclination_rad: deg_to_rad(53.0),
            raan_rad: deg_to_rad(200.0),
            arg_perigee_rad: deg_to_rad(90.0),
            mean_anomaly_rad: deg_to_rad(10.0),
        };
        let t = Tle::from_elements("X", 1, &el, epoch);
        let el2 = t.to_elements();
        assert!((el2.semi_major_axis_km - el.semi_major_axis_km).abs() < 0.01);
        assert!((el2.eccentricity - el.eccentricity).abs() < 1e-7);
        assert!((el2.inclination_rad - el.inclination_rad).abs() < 1e-6);
        assert!((el2.raan_rad - el.raan_rad).abs() < 1e-6);
    }

    #[test]
    fn sgp4_accepts_synthesized_tle() {
        use crate::propagator::Sgp4;
        let epoch = Epoch::from_ymdhms(2024, 6, 1, 0, 0, 0.0);
        let el = ClassicalElements::circular(546.0, deg_to_rad(53.0), 0.0, 0.0);
        let t = Tle::from_elements("S", 7, &el, epoch);
        let s = Sgp4::from_tle(&t).expect("init");
        let st = s.propagate_minutes(30.0).expect("propagate");
        assert!((st.altitude_km() - 546.0).abs() < 30.0);
    }

    #[test]
    fn parse_without_name_line() {
        let lines: Vec<&str> = ISS.lines().collect();
        let t = Tle::parse(&format!("{}\n{}", lines[1], lines[2])).unwrap();
        assert_eq!(t.name, "");
        assert_eq!(t.norad_id, 25544);
    }
}
