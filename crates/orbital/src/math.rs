//! Small fixed-size linear algebra for astrodynamics.
//!
//! A hand-rolled 3-vector and 3x3 matrix are all the orbital code needs;
//! using a dedicated module keeps the hot propagation paths free of generic
//! indirection and external dependencies.

use serde::{Deserialize, Serialize};
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

/// A 3-dimensional vector of `f64` components.
///
/// Units are context-dependent (kilometers for positions, km/s for
/// velocities, radians for angle triplets).
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Vec3 {
    /// X component.
    pub x: f64,
    /// Y component.
    pub y: f64,
    /// Z component.
    pub z: f64,
}

impl Vec3 {
    /// The zero vector.
    pub const ZERO: Vec3 = Vec3 { x: 0.0, y: 0.0, z: 0.0 };

    /// Unit vector along X.
    pub const X: Vec3 = Vec3 { x: 1.0, y: 0.0, z: 0.0 };

    /// Unit vector along Y.
    pub const Y: Vec3 = Vec3 { x: 0.0, y: 1.0, z: 0.0 };

    /// Unit vector along Z.
    pub const Z: Vec3 = Vec3 { x: 0.0, y: 0.0, z: 1.0 };

    /// Construct from components.
    pub const fn new(x: f64, y: f64, z: f64) -> Self {
        Vec3 { x, y, z }
    }

    /// Dot product.
    pub fn dot(self, other: Vec3) -> f64 {
        self.x * other.x + self.y * other.y + self.z * other.z
    }

    /// Cross product (right-handed).
    pub fn cross(self, other: Vec3) -> Vec3 {
        Vec3 {
            x: self.y * other.z - self.z * other.y,
            y: self.z * other.x - self.x * other.z,
            z: self.x * other.y - self.y * other.x,
        }
    }

    /// Euclidean norm.
    pub fn norm(self) -> f64 {
        self.dot(self).sqrt()
    }

    /// Squared norm (avoids the square root on hot paths).
    pub fn norm_sq(self) -> f64 {
        self.dot(self)
    }

    /// Unit vector in the same direction. Returns `Vec3::ZERO` for the zero
    /// vector rather than dividing by zero.
    pub fn normalized(self) -> Vec3 {
        let n = self.norm();
        if n == 0.0 {
            Vec3::ZERO
        } else {
            self / n
        }
    }

    /// Angle between two vectors in radians, in `[0, pi]`.
    pub fn angle_to(self, other: Vec3) -> f64 {
        let denom = self.norm() * other.norm();
        if denom == 0.0 {
            return 0.0;
        }
        (self.dot(other) / denom).clamp(-1.0, 1.0).acos()
    }

    /// Distance between two points.
    pub fn distance(self, other: Vec3) -> f64 {
        (self - other).norm()
    }

    /// Component-wise linear interpolation: `self + t * (other - self)`.
    pub fn lerp(self, other: Vec3, t: f64) -> Vec3 {
        self + (other - self) * t
    }

    /// True if all components are finite.
    pub fn is_finite(self) -> bool {
        self.x.is_finite() && self.y.is_finite() && self.z.is_finite()
    }
}

impl Add for Vec3 {
    type Output = Vec3;
    fn add(self, o: Vec3) -> Vec3 {
        Vec3::new(self.x + o.x, self.y + o.y, self.z + o.z)
    }
}

impl AddAssign for Vec3 {
    fn add_assign(&mut self, o: Vec3) {
        *self = *self + o;
    }
}

impl Sub for Vec3 {
    type Output = Vec3;
    fn sub(self, o: Vec3) -> Vec3 {
        Vec3::new(self.x - o.x, self.y - o.y, self.z - o.z)
    }
}

impl SubAssign for Vec3 {
    fn sub_assign(&mut self, o: Vec3) {
        *self = *self - o;
    }
}

impl Mul<f64> for Vec3 {
    type Output = Vec3;
    fn mul(self, s: f64) -> Vec3 {
        Vec3::new(self.x * s, self.y * s, self.z * s)
    }
}

impl Mul<Vec3> for f64 {
    type Output = Vec3;
    fn mul(self, v: Vec3) -> Vec3 {
        v * self
    }
}

impl Div<f64> for Vec3 {
    type Output = Vec3;
    fn div(self, s: f64) -> Vec3 {
        Vec3::new(self.x / s, self.y / s, self.z / s)
    }
}

impl Neg for Vec3 {
    type Output = Vec3;
    fn neg(self) -> Vec3 {
        Vec3::new(-self.x, -self.y, -self.z)
    }
}

/// A 3x3 matrix stored row-major, used for frame rotations.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Mat3 {
    /// Rows of the matrix.
    pub rows: [[f64; 3]; 3],
}

impl Mat3 {
    /// The identity matrix.
    pub const IDENTITY: Mat3 = Mat3 {
        rows: [[1.0, 0.0, 0.0], [0.0, 1.0, 0.0], [0.0, 0.0, 1.0]],
    };

    /// Construct from rows.
    pub const fn from_rows(r0: [f64; 3], r1: [f64; 3], r2: [f64; 3]) -> Self {
        Mat3 { rows: [r0, r1, r2] }
    }

    /// Rotation about the X axis by `theta` radians (frame rotation
    /// convention: rotates vectors from the old frame into the new frame).
    pub fn rot_x(theta: f64) -> Mat3 {
        let (s, c) = theta.sin_cos();
        Mat3::from_rows([1.0, 0.0, 0.0], [0.0, c, s], [0.0, -s, c])
    }

    /// Rotation about the Y axis by `theta` radians.
    pub fn rot_y(theta: f64) -> Mat3 {
        let (s, c) = theta.sin_cos();
        Mat3::from_rows([c, 0.0, -s], [0.0, 1.0, 0.0], [s, 0.0, c])
    }

    /// Rotation about the Z axis by `theta` radians.
    pub fn rot_z(theta: f64) -> Mat3 {
        let (s, c) = theta.sin_cos();
        Mat3::from_rows([c, s, 0.0], [-s, c, 0.0], [0.0, 0.0, 1.0])
    }

    /// Matrix-vector product.
    pub fn mul_vec(&self, v: Vec3) -> Vec3 {
        let r = &self.rows;
        Vec3::new(
            r[0][0] * v.x + r[0][1] * v.y + r[0][2] * v.z,
            r[1][0] * v.x + r[1][1] * v.y + r[1][2] * v.z,
            r[2][0] * v.x + r[2][1] * v.y + r[2][2] * v.z,
        )
    }

    /// Matrix-matrix product `self * other`.
    pub fn mul_mat(&self, other: &Mat3) -> Mat3 {
        let mut out = [[0.0; 3]; 3];
        for (i, row) in out.iter_mut().enumerate() {
            for (j, cell) in row.iter_mut().enumerate() {
                *cell = (0..3).map(|k| self.rows[i][k] * other.rows[k][j]).sum();
            }
        }
        Mat3 { rows: out }
    }

    /// Transpose. For rotation matrices this is the inverse.
    pub fn transpose(&self) -> Mat3 {
        let r = &self.rows;
        Mat3::from_rows(
            [r[0][0], r[1][0], r[2][0]],
            [r[0][1], r[1][1], r[2][1]],
            [r[0][2], r[1][2], r[2][2]],
        )
    }

    /// Determinant.
    pub fn det(&self) -> f64 {
        let r = &self.rows;
        r[0][0] * (r[1][1] * r[2][2] - r[1][2] * r[2][1])
            - r[0][1] * (r[1][0] * r[2][2] - r[1][2] * r[2][0])
            + r[0][2] * (r[1][0] * r[2][1] - r[1][1] * r[2][0])
    }
}

/// Normalize an angle to the range `[0, 2*pi)`.
pub fn wrap_two_pi(angle: f64) -> f64 {
    let tau = std::f64::consts::TAU;
    let mut a = angle % tau;
    if a < 0.0 {
        a += tau;
    }
    a
}

/// Normalize an angle to the range `(-pi, pi]`.
pub fn wrap_pi(angle: f64) -> f64 {
    let a = wrap_two_pi(angle);
    if a > std::f64::consts::PI {
        a - std::f64::consts::TAU
    } else {
        a
    }
}

/// Degrees to radians.
pub fn deg_to_rad(deg: f64) -> f64 {
    deg * std::f64::consts::PI / 180.0
}

/// Radians to degrees.
pub fn rad_to_deg(rad: f64) -> f64 {
    rad * 180.0 / std::f64::consts::PI
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::{FRAC_PI_2, PI, TAU};

    #[test]
    fn vec_basics() {
        let a = Vec3::new(1.0, 2.0, 3.0);
        let b = Vec3::new(4.0, -5.0, 6.0);
        assert_eq!(a + b, Vec3::new(5.0, -3.0, 9.0));
        assert_eq!(a - b, Vec3::new(-3.0, 7.0, -3.0));
        assert_eq!(a * 2.0, Vec3::new(2.0, 4.0, 6.0));
        assert_eq!(2.0 * a, a * 2.0);
        assert_eq!(-a, Vec3::new(-1.0, -2.0, -3.0));
        assert!((a.dot(b) - 12.0).abs() < 1e-12);
    }

    #[test]
    fn cross_is_right_handed() {
        assert_eq!(Vec3::X.cross(Vec3::Y), Vec3::Z);
        assert_eq!(Vec3::Y.cross(Vec3::Z), Vec3::X);
        assert_eq!(Vec3::Z.cross(Vec3::X), Vec3::Y);
    }

    #[test]
    fn cross_is_antisymmetric() {
        let a = Vec3::new(1.3, -0.2, 2.7);
        let b = Vec3::new(-4.0, 0.5, 1.1);
        let c = a.cross(b) + b.cross(a);
        assert!(c.norm() < 1e-12);
    }

    #[test]
    fn normalized_zero_is_zero() {
        assert_eq!(Vec3::ZERO.normalized(), Vec3::ZERO);
    }

    #[test]
    fn angle_between_axes() {
        assert!((Vec3::X.angle_to(Vec3::Y) - FRAC_PI_2).abs() < 1e-12);
        assert!((Vec3::X.angle_to(-Vec3::X) - PI).abs() < 1e-12);
        assert!(Vec3::X.angle_to(Vec3::X).abs() < 1e-12);
    }

    #[test]
    fn lerp_endpoints() {
        let a = Vec3::new(1.0, 1.0, 1.0);
        let b = Vec3::new(3.0, -1.0, 5.0);
        assert_eq!(a.lerp(b, 0.0), a);
        assert_eq!(a.lerp(b, 1.0), b);
        assert_eq!(a.lerp(b, 0.5), Vec3::new(2.0, 0.0, 3.0));
    }

    #[test]
    fn rotation_preserves_norm() {
        let v = Vec3::new(3.0, -4.0, 12.0);
        for theta in [0.1, 1.0, 2.5, -0.7] {
            for m in [Mat3::rot_x(theta), Mat3::rot_y(theta), Mat3::rot_z(theta)] {
                assert!((m.mul_vec(v).norm() - v.norm()).abs() < 1e-12);
                assert!((m.det() - 1.0).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn rot_z_frame_convention() {
        // Rotating the frame by +90 degrees about Z maps the old +X axis to
        // the new frame's -Y... check: v expressed in old frame = X; in new
        // frame coordinates it should be (cos, -sin?, ...). With our
        // convention R_z(90) * X = (0, -1, 0)? sin(90)=1:
        // row0 = (0, 1, 0) -> x' = v.y = 0; row1 = (-1, 0, 0) -> y' = -1.
        let v = Mat3::rot_z(FRAC_PI_2).mul_vec(Vec3::X);
        assert!((v - Vec3::new(0.0, -1.0, 0.0)).norm() < 1e-12);
    }

    #[test]
    fn transpose_is_inverse_of_rotation() {
        let m = Mat3::rot_z(0.7).mul_mat(&Mat3::rot_x(-1.2));
        let id = m.mul_mat(&m.transpose());
        for i in 0..3 {
            for j in 0..3 {
                let want = if i == j { 1.0 } else { 0.0 };
                assert!((id.rows[i][j] - want).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn wrap_angles() {
        assert!((wrap_two_pi(-0.1) - (TAU - 0.1)).abs() < 1e-12);
        assert!((wrap_two_pi(TAU + 0.25) - 0.25).abs() < 1e-12);
        assert!((wrap_pi(PI + 0.1) - (-PI + 0.1)).abs() < 1e-12);
        assert!((wrap_pi(-PI - 0.1) - (PI - 0.1)).abs() < 1e-12);
    }

    #[test]
    fn deg_rad_roundtrip() {
        for d in [-720.0, -53.0, 0.0, 28.5, 97.6, 360.0] {
            assert!((rad_to_deg(deg_to_rad(d)) - d).abs() < 1e-10);
        }
    }
}

/// Solve the dense linear system `A x = b` by Gaussian elimination with
/// partial pivoting. `a` is row-major and consumed; returns `None` when the
/// matrix is singular (pivot below 1e-12 after scaling).
#[allow(clippy::needless_range_loop)] // row elimination reads a[col][k] while writing a[row][k]
pub fn solve_linear_system(mut a: Vec<Vec<f64>>, mut b: Vec<f64>) -> Option<Vec<f64>> {
    let n = b.len();
    assert!(a.len() == n && a.iter().all(|r| r.len() == n), "A must be n x n");
    for col in 0..n {
        // Partial pivot.
        let pivot_row = (col..n).max_by(|&i, &j| {
            a[i][col].abs().partial_cmp(&a[j][col].abs()).unwrap()
        })?;
        if a[pivot_row][col].abs() < 1e-12 {
            return None;
        }
        a.swap(col, pivot_row);
        b.swap(col, pivot_row);
        for row in (col + 1)..n {
            let f = a[row][col] / a[col][col];
            for k in col..n {
                a[row][k] -= f * a[col][k];
            }
            b[row] -= f * b[col];
        }
    }
    // Back substitution.
    let mut x = vec![0.0; n];
    for col in (0..n).rev() {
        let mut s = b[col];
        for k in (col + 1)..n {
            s -= a[col][k] * x[k];
        }
        x[col] = s / a[col][col];
    }
    Some(x)
}

#[cfg(test)]
mod solver_tests {
    use super::*;

    #[test]
    fn solves_identity() {
        let a = vec![vec![1.0, 0.0], vec![0.0, 1.0]];
        let x = solve_linear_system(a, vec![3.0, -4.0]).unwrap();
        assert!((x[0] - 3.0).abs() < 1e-12 && (x[1] + 4.0).abs() < 1e-12);
    }

    #[test]
    fn solves_requiring_pivot() {
        // First pivot is zero: requires row swap.
        let a = vec![vec![0.0, 1.0], vec![2.0, 1.0]];
        let x = solve_linear_system(a, vec![1.0, 4.0]).unwrap();
        // 2x + y = 4, y = 1 -> x = 1.5.
        assert!((x[0] - 1.5).abs() < 1e-12 && (x[1] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn detects_singular() {
        let a = vec![vec![1.0, 2.0], vec![2.0, 4.0]];
        assert!(solve_linear_system(a, vec![1.0, 2.0]).is_none());
    }

    #[test]
    #[allow(clippy::needless_range_loop)]
    fn random_3x3_residual() {
        let a = vec![
            vec![4.0, -2.0, 1.0],
            vec![3.0, 6.0, -4.0],
            vec![2.0, 1.0, 8.0],
        ];
        let b = vec![12.0, -25.0, 32.0];
        let x = solve_linear_system(a.clone(), b.clone()).unwrap();
        for i in 0..3 {
            let got: f64 = (0..3).map(|j| a[i][j] * x[j]).sum();
            assert!((got - b[i]).abs() < 1e-9);
        }
    }
}
