//! Reference frames and coordinate conversions.
//!
//! The propagators in this crate output positions in an inertial frame
//! (TEME for SGP4; for the Kepler/J2 propagator we use the same axes). Link
//! geometry, however, lives on the rotating Earth. This module provides:
//!
//! * ECI (TEME) ⇄ ECEF rotation via GMST,
//! * ECEF ⇄ WGS-84 geodetic latitude/longitude/altitude,
//! * topocentric SEZ look angles (azimuth / elevation / range) from a ground
//!   site to a satellite.

use crate::earth::{EARTH_ECC2, EARTH_RADIUS_KM};
use crate::math::{rad_to_deg, wrap_two_pi, Mat3, Vec3};
use serde::{Deserialize, Serialize};

/// A WGS-84 geodetic position.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Geodetic {
    /// Geodetic latitude, radians, positive north.
    pub latitude_rad: f64,
    /// Longitude, radians, positive east, in `(-pi, pi]`.
    pub longitude_rad: f64,
    /// Height above the WGS-84 ellipsoid, km.
    pub altitude_km: f64,
}

impl Geodetic {
    /// Construct from degrees latitude/longitude and altitude in km.
    pub fn from_degrees(lat_deg: f64, lon_deg: f64, altitude_km: f64) -> Self {
        Geodetic {
            latitude_rad: lat_deg.to_radians(),
            longitude_rad: lon_deg.to_radians(),
            altitude_km,
        }
    }

    /// Latitude in degrees.
    pub fn latitude_deg(&self) -> f64 {
        rad_to_deg(self.latitude_rad)
    }

    /// Longitude in degrees.
    pub fn longitude_deg(&self) -> f64 {
        rad_to_deg(self.longitude_rad)
    }

    /// Great-circle distance to another geodetic point along the mean-radius
    /// sphere, km. Adequate for the city-spacing sanity checks; not meant for
    /// geodesy-grade work.
    pub fn haversine_km(&self, other: &Geodetic) -> f64 {
        let dlat = other.latitude_rad - self.latitude_rad;
        let dlon = other.longitude_rad - self.longitude_rad;
        let a = (dlat / 2.0).sin().powi(2)
            + self.latitude_rad.cos() * other.latitude_rad.cos() * (dlon / 2.0).sin().powi(2);
        2.0 * EARTH_RADIUS_KM * a.sqrt().asin()
    }
}

/// Topocentric look angles from a ground site to a target.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LookAngles {
    /// Azimuth, radians clockwise from true north, `[0, 2pi)`.
    pub azimuth_rad: f64,
    /// Elevation above the local horizon, radians, `[-pi/2, pi/2]`.
    pub elevation_rad: f64,
    /// Slant range, km.
    pub range_km: f64,
}

impl LookAngles {
    /// Elevation in degrees.
    pub fn elevation_deg(&self) -> f64 {
        rad_to_deg(self.elevation_rad)
    }

    /// Azimuth in degrees.
    pub fn azimuth_deg(&self) -> f64 {
        rad_to_deg(self.azimuth_rad)
    }
}

/// Rotate an ECI (TEME) position into ECEF given the GMST angle (radians).
pub fn eci_to_ecef(eci: Vec3, gmst: f64) -> Vec3 {
    Mat3::rot_z(gmst).mul_vec(eci)
}

/// Rotate an ECEF position into ECI (TEME) given the GMST angle (radians).
pub fn ecef_to_eci(ecef: Vec3, gmst: f64) -> Vec3 {
    Mat3::rot_z(-gmst).mul_vec(ecef)
}

/// Convert a WGS-84 geodetic position to ECEF Cartesian coordinates (km).
pub fn geodetic_to_ecef(geo: Geodetic) -> Vec3 {
    let (slat, clat) = geo.latitude_rad.sin_cos();
    let (slon, clon) = geo.longitude_rad.sin_cos();
    // Radius of curvature in the prime vertical.
    let n = EARTH_RADIUS_KM / (1.0 - EARTH_ECC2 * slat * slat).sqrt();
    let h = geo.altitude_km;
    Vec3::new(
        (n + h) * clat * clon,
        (n + h) * clat * slon,
        (n * (1.0 - EARTH_ECC2) + h) * slat,
    )
}

/// Convert an ECEF Cartesian position (km) to WGS-84 geodetic coordinates.
///
/// Uses Bowring-style fixed-point iteration on the geodetic latitude; three
/// iterations reach sub-millimeter accuracy for any LEO-relevant altitude.
pub fn ecef_to_geodetic(ecef: Vec3) -> Geodetic {
    let p = (ecef.x * ecef.x + ecef.y * ecef.y).sqrt();
    let longitude_rad = ecef.y.atan2(ecef.x);
    if p < 1e-9 {
        // On the polar axis.
        let sign = if ecef.z >= 0.0 { 1.0 } else { -1.0 };
        let b = EARTH_RADIUS_KM * (1.0 - EARTH_ECC2).sqrt();
        return Geodetic {
            latitude_rad: sign * std::f64::consts::FRAC_PI_2,
            longitude_rad: 0.0,
            altitude_km: ecef.z.abs() - b,
        };
    }
    let mut lat = (ecef.z / (p * (1.0 - EARTH_ECC2))).atan();
    let mut n = EARTH_RADIUS_KM;
    for _ in 0..5 {
        let slat = lat.sin();
        n = EARTH_RADIUS_KM / (1.0 - EARTH_ECC2 * slat * slat).sqrt();
        lat = ((ecef.z + EARTH_ECC2 * n * slat) / p).atan();
    }
    let altitude_km = p / lat.cos() - n;
    Geodetic { latitude_rad: lat, longitude_rad, altitude_km }
}

/// Geodetic sub-satellite point from an ECI position at the given GMST.
pub fn subpoint(eci: Vec3, gmst: f64) -> Geodetic {
    ecef_to_geodetic(eci_to_ecef(eci, gmst))
}

/// Compute look angles (azimuth/elevation/range) from a ground site to a
/// target, both given in ECEF (km).
///
/// The topocentric frame is SEZ (south-east-zenith) built on the site's
/// *geodetic* vertical, which is what antenna pointing uses.
pub fn look_angles(site_geo: Geodetic, site_ecef: Vec3, target_ecef: Vec3) -> LookAngles {
    let rho = target_ecef - site_ecef;
    let (slat, clat) = site_geo.latitude_rad.sin_cos();
    let (slon, clon) = site_geo.longitude_rad.sin_cos();
    // SEZ unit vectors in ECEF.
    let south = Vec3::new(slat * clon, slat * slon, -clat);
    let east = Vec3::new(-slon, clon, 0.0);
    let zenith = Vec3::new(clat * clon, clat * slon, slat);
    let rs = rho.dot(south);
    let re = rho.dot(east);
    let rz = rho.dot(zenith);
    let range_km = rho.norm();
    let elevation_rad = if range_km > 0.0 { (rz / range_km).clamp(-1.0, 1.0).asin() } else { 0.0 };
    // Azimuth measured clockwise from north: north = -south component.
    let azimuth_rad = wrap_two_pi((re).atan2(-rs));
    LookAngles { azimuth_rad, elevation_rad, range_km }
}

/// Fast elevation-only computation, the hot predicate of the whole
/// simulator. Returns the sine of the elevation angle from the site to the
/// target (both ECEF), without computing azimuth or trigonometric inverses.
///
/// `zenith` must be the site's precomputed geodetic zenith unit vector in
/// ECEF (see [`site_zenith`]).
#[inline]
pub fn sin_elevation(site_ecef: Vec3, zenith: Vec3, target_ecef: Vec3) -> f64 {
    let rho = target_ecef - site_ecef;
    let n = rho.norm();
    if n == 0.0 {
        return 1.0;
    }
    rho.dot(zenith) / n
}

/// The geodetic zenith unit vector of a site, in ECEF.
pub fn site_zenith(geo: Geodetic) -> Vec3 {
    let (slat, clat) = geo.latitude_rad.sin_cos();
    let (slon, clon) = geo.longitude_rad.sin_cos();
    Vec3::new(clat * clon, clat * slon, slat)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::math::deg_to_rad;

    #[test]
    fn geodetic_ecef_roundtrip() {
        for &(lat, lon, alt) in &[
            (0.0, 0.0, 0.0),
            (25.03, 121.56, 0.02),   // Taipei
            (-37.81, 144.96, 0.05),  // Melbourne
            (89.9, 10.0, 0.1),
            (-89.9, -170.0, 3.0),
            (45.0, 180.0, 550.0),
        ] {
            let g = Geodetic::from_degrees(lat, lon, alt);
            let e = geodetic_to_ecef(g);
            let g2 = ecef_to_geodetic(e);
            assert!((g2.latitude_deg() - lat).abs() < 1e-6, "lat {lat}: {}", g2.latitude_deg());
            let dl = crate::math::wrap_pi(g2.longitude_rad - g.longitude_rad);
            assert!(dl.abs() < 1e-9, "lon {lon}");
            assert!((g2.altitude_km - alt).abs() < 1e-6, "alt {alt}: {}", g2.altitude_km);
        }
    }

    #[test]
    fn ecef_equator_prime_meridian() {
        let g = Geodetic::from_degrees(0.0, 0.0, 0.0);
        let e = geodetic_to_ecef(g);
        assert!((e.x - EARTH_RADIUS_KM).abs() < 1e-9);
        assert!(e.y.abs() < 1e-9 && e.z.abs() < 1e-9);
    }

    #[test]
    fn polar_radius_shorter() {
        let pole = geodetic_to_ecef(Geodetic::from_degrees(90.0, 0.0, 0.0));
        // WGS-84 polar radius is ~6356.75 km.
        assert!((pole.z - 6356.752).abs() < 0.01, "polar z {}", pole.z);
    }

    #[test]
    fn eci_ecef_rotation_roundtrip() {
        let v = Vec3::new(4000.0, -5000.0, 3000.0);
        for gmst in [0.0, 1.0, 3.5, 6.0] {
            let back = ecef_to_eci(eci_to_ecef(v, gmst), gmst);
            assert!((back - v).norm() < 1e-9);
        }
    }

    #[test]
    fn eci_to_ecef_rotates_with_earth() {
        // A point fixed in ECI above the prime meridian at gmst=0 should
        // appear to move westward in ECEF as gmst increases.
        let eci = Vec3::new(7000.0, 0.0, 0.0);
        let e0 = ecef_to_geodetic(eci_to_ecef(eci, 0.0));
        let e1 = ecef_to_geodetic(eci_to_ecef(eci, deg_to_rad(10.0)));
        assert!(e0.longitude_deg().abs() < 1e-9);
        assert!((e1.longitude_deg() + 10.0).abs() < 1e-9, "lon {}", e1.longitude_deg());
    }

    #[test]
    fn overhead_satellite_elevation_90() {
        let site = Geodetic::from_degrees(25.0, 121.5, 0.0);
        let site_e = geodetic_to_ecef(site);
        let sat = geodetic_to_ecef(Geodetic::from_degrees(25.0, 121.5, 550.0));
        let la = look_angles(site, site_e, sat);
        assert!(la.elevation_deg() > 89.9, "elev {}", la.elevation_deg());
        assert!((la.range_km - 550.0).abs() < 2.0, "range {}", la.range_km);
    }

    #[test]
    fn horizon_satellite_low_elevation() {
        let site = Geodetic::from_degrees(0.0, 0.0, 0.0);
        let site_e = geodetic_to_ecef(site);
        // Satellite 550 km up but 25 degrees of longitude away: near horizon.
        let sat = geodetic_to_ecef(Geodetic::from_degrees(0.0, 25.0, 550.0));
        let la = look_angles(site, site_e, sat);
        assert!(la.elevation_deg() < 10.0, "elev {}", la.elevation_deg());
        assert!(la.elevation_deg() > -10.0);
        // Azimuth should be due east (90 degrees).
        assert!((la.azimuth_deg() - 90.0).abs() < 1.0, "az {}", la.azimuth_deg());
    }

    #[test]
    fn azimuth_cardinal_directions() {
        let site = Geodetic::from_degrees(10.0, 20.0, 0.0);
        let site_e = geodetic_to_ecef(site);
        let north = geodetic_to_ecef(Geodetic::from_degrees(15.0, 20.0, 550.0));
        let south = geodetic_to_ecef(Geodetic::from_degrees(5.0, 20.0, 550.0));
        let west = geodetic_to_ecef(Geodetic::from_degrees(10.0, 15.0, 550.0));
        let az_n = look_angles(site, site_e, north).azimuth_deg();
        assert!(!(2.0..=358.0).contains(&az_n), "north az {az_n}");
        assert!((look_angles(site, site_e, south).azimuth_deg() - 180.0).abs() < 2.0);
        assert!((look_angles(site, site_e, west).azimuth_deg() - 270.0).abs() < 2.0);
    }

    #[test]
    fn sin_elevation_matches_look_angles() {
        let site = Geodetic::from_degrees(25.03, 121.56, 0.0);
        let site_e = geodetic_to_ecef(site);
        let z = site_zenith(site);
        for &(lat, lon) in &[(30.0, 125.0), (20.0, 110.0), (25.0, 121.0), (60.0, 121.0)] {
            let sat = geodetic_to_ecef(Geodetic::from_degrees(lat, lon, 550.0));
            let la = look_angles(site, site_e, sat);
            let s = sin_elevation(site_e, z, sat);
            assert!((s - la.elevation_rad.sin()).abs() < 1e-12);
        }
    }

    #[test]
    fn haversine_known_distance() {
        // Taipei to Melbourne is roughly 7370 km.
        let taipei = Geodetic::from_degrees(25.03, 121.56, 0.0);
        let melb = Geodetic::from_degrees(-37.81, 144.96, 0.0);
        let d = taipei.haversine_km(&melb);
        assert!((d - 7370.0).abs() < 100.0, "distance {d}");
    }

    #[test]
    fn subpoint_altitude_reasonable() {
        let eci = Vec3::new(6928.0, 0.0, 0.0);
        let g = subpoint(eci, 0.0);
        assert!((g.altitude_km - (6928.0 - EARTH_RADIUS_KM)).abs() < 1.0);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn geodetic_roundtrip_everywhere(
            lat in -89.5..89.5f64,
            lon in -179.9..179.9f64,
            alt in 0.0..3000.0f64,
        ) {
            let g = Geodetic::from_degrees(lat, lon, alt);
            let back = ecef_to_geodetic(geodetic_to_ecef(g));
            prop_assert!((back.latitude_deg() - lat).abs() < 1e-6);
            prop_assert!(crate::math::wrap_pi(back.longitude_rad - g.longitude_rad).abs() < 1e-9);
            prop_assert!((back.altitude_km - alt).abs() < 1e-5);
        }

        #[test]
        fn rotation_roundtrip_preserves_vectors(
            x in -1e4..1e4f64,
            y in -1e4..1e4f64,
            z in -1e4..1e4f64,
            gmst in 0.0..std::f64::consts::TAU,
        ) {
            let v = Vec3::new(x, y, z);
            let back = ecef_to_eci(eci_to_ecef(v, gmst), gmst);
            prop_assert!((back - v).norm() < 1e-9);
            prop_assert!((eci_to_ecef(v, gmst).norm() - v.norm()).abs() < 1e-9);
        }

        #[test]
        fn elevation_bounded(
            site_lat in -80.0..80.0f64,
            site_lon in -179.0..179.0f64,
            sat_lat in -80.0..80.0f64,
            sat_lon in -179.0..179.0f64,
        ) {
            let site = Geodetic::from_degrees(site_lat, site_lon, 0.0);
            let site_e = geodetic_to_ecef(site);
            let sat = geodetic_to_ecef(Geodetic::from_degrees(sat_lat, sat_lon, 550.0));
            let la = look_angles(site, site_e, sat);
            prop_assert!(la.elevation_rad <= std::f64::consts::FRAC_PI_2 + 1e-12);
            prop_assert!(la.elevation_rad >= -std::f64::consts::FRAC_PI_2 - 1e-12);
            prop_assert!((0.0..std::f64::consts::TAU).contains(&la.azimuth_rad));
            prop_assert!(la.range_km > 0.0);
            // sin_elevation agrees with the full computation.
            let s = sin_elevation(site_e, site_zenith(site), sat);
            prop_assert!((s - la.elevation_rad.sin()).abs() < 1e-10);
        }
    }
}
