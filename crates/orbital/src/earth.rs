//! Physical constants for Earth and its gravity field.
//!
//! Values follow the WGS-84 ellipsoid and the WGS-72 set used by SGP4 where
//! noted. Units are kilometers, seconds, and radians unless stated otherwise.

/// Mean equatorial radius of Earth (WGS-84), km.
pub const EARTH_RADIUS_KM: f64 = 6378.137;

/// Earth gravitational parameter GM (WGS-84), km^3/s^2.
pub const EARTH_MU_KM3_S2: f64 = 398600.4418;

/// Flattening of the WGS-84 reference ellipsoid (dimensionless).
pub const EARTH_FLATTENING: f64 = 1.0 / 298.257223563;

/// First eccentricity squared of the WGS-84 ellipsoid.
pub const EARTH_ECC2: f64 = EARTH_FLATTENING * (2.0 - EARTH_FLATTENING);

/// Second zonal harmonic J2 of Earth's gravity field (EGM-96).
pub const EARTH_J2: f64 = 1.082_626_68e-3;

/// Third zonal harmonic J3 (EGM-96). Used by SGP4's long-period terms.
pub const EARTH_J3: f64 = -2.532_65e-6;

/// Fourth zonal harmonic J4 (EGM-96).
pub const EARTH_J4: f64 = -1.619_62e-6;

/// Earth rotation rate, rad/s (sidereal).
pub const EARTH_ROTATION_RAD_S: f64 = 7.292_115_146_706_979e-5;

/// Sidereal day length in seconds.
pub const SIDEREAL_DAY_S: f64 = 86164.0905;

/// Solar day length in seconds.
pub const SOLAR_DAY_S: f64 = 86400.0;

/// SGP4/WGS-72 value of Earth radius, km (kept separate from WGS-84 because
/// the SGP4 constants are calibrated against it).
pub const SGP4_EARTH_RADIUS_KM: f64 = 6378.135;

/// SGP4/WGS-72 value of sqrt(GM) expressed in (earth radii)^1.5 / min,
/// i.e. the `XKE` constant of Spacetrack Report #3.
pub const SGP4_XKE: f64 = 0.074_669_161_33;

/// SGP4/WGS-72 J2.
pub const SGP4_J2: f64 = 1.082_616e-3;

/// SGP4/WGS-72 J3.
pub const SGP4_J3: f64 = -2.538_81e-6;

/// SGP4/WGS-72 J4.
pub const SGP4_J4: f64 = -1.655_97e-6;

/// Orbital period of a circular orbit at the given altitude above the mean
/// equatorial radius, in seconds.
///
/// ```
/// let p = orbital::earth::circular_period_s(550.0);
/// assert!((p / 60.0 - 95.6).abs() < 0.5); // Starlink-ish: ~95.6 minutes
/// ```
pub fn circular_period_s(altitude_km: f64) -> f64 {
    let a = EARTH_RADIUS_KM + altitude_km;
    2.0 * std::f64::consts::PI * (a * a * a / EARTH_MU_KM3_S2).sqrt()
}

/// Circular orbital speed at the given altitude, km/s.
pub fn circular_speed_km_s(altitude_km: f64) -> f64 {
    let a = EARTH_RADIUS_KM + altitude_km;
    (EARTH_MU_KM3_S2 / a).sqrt()
}

/// Semi-major axis (km) of an orbit with the given mean motion in
/// revolutions per (solar) day.
pub fn sma_from_mean_motion(revs_per_day: f64) -> f64 {
    let n_rad_s = revs_per_day * 2.0 * std::f64::consts::PI / SOLAR_DAY_S;
    (EARTH_MU_KM3_S2 / (n_rad_s * n_rad_s)).cbrt()
}

/// Mean motion (revs/day) of an orbit with the given semi-major axis (km).
pub fn mean_motion_from_sma(sma_km: f64) -> f64 {
    let n_rad_s = (EARTH_MU_KM3_S2 / (sma_km * sma_km * sma_km)).sqrt();
    n_rad_s * SOLAR_DAY_S / (2.0 * std::f64::consts::PI)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iss_like_period() {
        // ISS at ~420 km: period ~92.8 min.
        let p = circular_period_s(420.0) / 60.0;
        assert!((p - 92.8).abs() < 0.5, "period {p}");
    }

    #[test]
    fn leo_speed() {
        // LEO speed is ~7.6 km/s at 550 km.
        let v = circular_speed_km_s(550.0);
        assert!((v - 7.585).abs() < 0.05, "speed {v}");
    }

    #[test]
    fn sma_mean_motion_roundtrip() {
        for alt in [300.0, 550.0, 1200.0, 2000.0] {
            let a = EARTH_RADIUS_KM + alt;
            let n = mean_motion_from_sma(a);
            let a2 = sma_from_mean_motion(n);
            assert!((a - a2).abs() < 1e-6, "alt {alt}: {a} vs {a2}");
        }
    }

    #[test]
    fn starlink_mean_motion() {
        // Starlink at 550 km has mean motion ~15.06 rev/day.
        let n = mean_motion_from_sma(EARTH_RADIUS_KM + 550.0);
        assert!((n - 15.06).abs() < 0.05, "mean motion {n}");
    }

    #[test]
    fn geostationary_sma() {
        // GEO: mean motion 1.0027 revs/day -> a ~42164 km.
        let a = sma_from_mean_motion(1.0027379);
        assert!((a - 42164.0).abs() < 10.0, "geo sma {a}");
    }

    #[test]
    fn ecc2_consistent_with_flattening() {
        let f = EARTH_FLATTENING;
        assert!((EARTH_ECC2 - (2.0 * f - f * f)).abs() < 1e-15);
    }
}
