//! Orbit determination by differential correction.
//!
//! The proof-of-coverage design (see `dcp::poc`) verifies claims against
//! *published* orbital elements. A stronger adversary publishes wrong
//! elements. The counter is classical orbit determination: any party with a
//! ranging-capable ground station can fit a satellite's elements from its
//! own measurements and compare them with the published ones — closing the
//! last trust gap with physics.
//!
//! The estimator is textbook batch least squares (Gauss–Newton with
//! Levenberg damping): six Keplerian parameters fit to slant-range
//! observations from a known site, Jacobian by central finite differences
//! through the [`KeplerJ2`] propagator.

use crate::frames::eci_to_ecef;
use crate::ground::GroundSite;
use crate::kepler::ClassicalElements;
use crate::math::{solve_linear_system, wrap_two_pi};
use crate::propagator::{KeplerJ2, Propagator};
use crate::time::Epoch;
use serde::{Deserialize, Serialize};

/// One slant-range measurement from a site.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RangeObservation {
    /// Observation time, seconds after the fit epoch.
    pub t_offset_s: f64,
    /// Measured slant range, km.
    pub range_km: f64,
}

/// Outcome of a successful fit.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FitResult {
    /// Estimated elements at the fit epoch.
    pub elements: ClassicalElements,
    /// Root-mean-square range residual, km.
    pub rms_km: f64,
    /// Gauss–Newton iterations used.
    pub iterations: usize,
}

/// Why a fit failed.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum OdError {
    /// Fewer observations than parameters.
    TooFewObservations,
    /// The normal equations went singular (degenerate geometry).
    SingularGeometry,
    /// The iteration failed to converge within the budget.
    NoConvergence,
}

impl std::fmt::Display for OdError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            OdError::TooFewObservations => write!(f, "need at least 6 observations"),
            OdError::SingularGeometry => write!(f, "observation geometry is degenerate"),
            OdError::NoConvergence => write!(f, "differential correction did not converge"),
        }
    }
}

impl std::error::Error for OdError {}

fn pack(el: &ClassicalElements) -> [f64; 6] {
    [
        el.semi_major_axis_km,
        el.eccentricity,
        el.inclination_rad,
        el.raan_rad,
        el.arg_perigee_rad,
        el.mean_anomaly_rad,
    ]
}

fn unpack(x: &[f64; 6]) -> ClassicalElements {
    ClassicalElements {
        semi_major_axis_km: x[0],
        eccentricity: x[1].clamp(0.0, 0.9),
        inclination_rad: x[2].clamp(1e-6, std::f64::consts::PI - 1e-6),
        raan_rad: wrap_two_pi(x[3]),
        arg_perigee_rad: wrap_two_pi(x[4]),
        mean_anomaly_rad: wrap_two_pi(x[5]),
    }
}

/// Model range from candidate elements at one observation time.
fn model_range(x: &[f64; 6], epoch: Epoch, site: &GroundSite, t_offset_s: f64) -> f64 {
    let el = unpack(x);
    let prop = KeplerJ2::from_elements(&el, epoch);
    let t = epoch.plus_seconds(t_offset_s);
    let ecef = eci_to_ecef(prop.position_at(t), t.gmst());
    site.ecef.distance(ecef)
}

fn rms(x: &[f64; 6], epoch: Epoch, site: &GroundSite, obs: &[RangeObservation]) -> f64 {
    let ss: f64 = obs
        .iter()
        .map(|o| {
            let r = model_range(x, epoch, site, o.t_offset_s) - o.range_km;
            r * r
        })
        .sum();
    (ss / obs.len() as f64).sqrt()
}

/// Fit elements to range observations starting from `initial`.
///
/// Converges from initial guesses within a few hundred km / few degrees of
/// the truth (the regime of "published elements, possibly stale or forged")
/// given ≥ 6 observations with diverse geometry (ideally spanning one or
/// more passes).
pub fn fit_elements(
    initial: &ClassicalElements,
    epoch: Epoch,
    site: &GroundSite,
    obs: &[RangeObservation],
) -> Result<FitResult, OdError> {
    if obs.len() < 6 {
        return Err(OdError::TooFewObservations);
    }
    let mut x = pack(initial);
    // Parameter scales for finite differencing: km for a, dimensionless for
    // e, radians for angles.
    let steps = [1.0e-1, 1.0e-5, 1.0e-5, 1.0e-5, 1.0e-5, 1.0e-5];
    let mut lambda = 1.0e-3;
    let mut last_rms = rms(&x, epoch, site, obs);
    for iteration in 1..=40 {
        // Residuals and Jacobian (central differences).
        let m = obs.len();
        let mut jac = vec![[0.0f64; 6]; m];
        let mut res = vec![0.0f64; m];
        for (k, o) in obs.iter().enumerate() {
            res[k] = o.range_km - model_range(&x, epoch, site, o.t_offset_s);
            for p in 0..6 {
                let mut xp = x;
                let mut xm = x;
                xp[p] += steps[p];
                xm[p] -= steps[p];
                let rp = model_range(&xp, epoch, site, o.t_offset_s);
                let rm = model_range(&xm, epoch, site, o.t_offset_s);
                jac[k][p] = (rp - rm) / (2.0 * steps[p]);
            }
        }
        // Normal equations with Levenberg damping: (JtJ + λ diag) dx = Jt r.
        let mut jtj = vec![vec![0.0f64; 6]; 6];
        let mut jtr = vec![0.0f64; 6];
        for k in 0..m {
            for i in 0..6 {
                jtr[i] += jac[k][i] * res[k];
                for j in 0..6 {
                    jtj[i][j] += jac[k][i] * jac[k][j];
                }
            }
        }
        // Additive Levenberg damping keeps the system nonsingular even on
        // flat directions (e.g. the argp/M degeneracy of circular orbits).
        let diag_max = (0..6).map(|i| jtj[i][i]).fold(0.0f64, f64::max).max(1e-12);
        for (i, row) in jtj.iter_mut().enumerate() {
            row[i] += lambda * diag_max;
        }
        let dx = solve_linear_system(jtj, jtr).ok_or(OdError::SingularGeometry)?;
        let mut x_new = x;
        for p in 0..6 {
            x_new[p] += dx[p];
        }
        let new_rms = rms(&x_new, epoch, site, obs);
        if new_rms < last_rms {
            x = x_new;
            lambda = (lambda * 0.5).max(1e-9);
            let improved = last_rms - new_rms;
            last_rms = new_rms;
            if improved < 1e-6 && new_rms < 1.0 {
                return Ok(FitResult { elements: unpack(&x), rms_km: new_rms, iterations: iteration });
            }
        } else {
            lambda *= 10.0;
            if lambda > 1e6 {
                // Stuck: report what we have if it is already a good fit.
                if last_rms < 1.0 {
                    return Ok(FitResult {
                        elements: unpack(&x),
                        rms_km: last_rms,
                        iterations: iteration,
                    });
                }
                return Err(OdError::NoConvergence);
            }
        }
    }
    if last_rms < 5.0 {
        Ok(FitResult { elements: unpack(&x), rms_km: last_rms, iterations: 40 })
    } else {
        Err(OdError::NoConvergence)
    }
}

/// Generate synthetic range observations of a satellite from a site while
/// it is above `min_elevation_deg` (the measurement a ranging ground
/// station would log), with optional Gaussian-ish noise (deterministic
/// triangular noise from a seed; good enough for estimator tests).
#[allow(clippy::too_many_arguments)]
pub fn synthesize_observations(
    truth: &ClassicalElements,
    epoch: Epoch,
    site: &GroundSite,
    duration_s: f64,
    step_s: f64,
    min_elevation_deg: f64,
    noise_km: f64,
    seed: u64,
) -> Vec<RangeObservation> {
    let prop = KeplerJ2::from_elements(truth, epoch);
    let sin_mask = min_elevation_deg.to_radians().sin();
    let mut out = Vec::new();
    let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
    let mut next = || {
        // xorshift64*
        state ^= state >> 12;
        state ^= state << 25;
        state ^= state >> 27;
        (state.wrapping_mul(0x2545_F491_4F6C_DD1D) >> 11) as f64 / (1u64 << 53) as f64
    };
    let mut t = 0.0;
    while t <= duration_s {
        let e = epoch.plus_seconds(t);
        let ecef = eci_to_ecef(prop.position_at(e), e.gmst());
        if crate::frames::sin_elevation(site.ecef, site.zenith, ecef) >= sin_mask {
            // Triangular noise in [-noise, +noise].
            let n = (next() + next() - 1.0) * noise_km;
            out.push(RangeObservation { t_offset_s: t, range_km: site.ecef.distance(ecef) + n });
        }
        t += step_s;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::math::deg_to_rad;

    fn epoch() -> Epoch {
        Epoch::from_ymdhms(2024, 6, 1, 0, 0, 0.0)
    }

    fn truth() -> ClassicalElements {
        ClassicalElements::circular(550.0, deg_to_rad(53.0), deg_to_rad(120.0), deg_to_rad(30.0))
    }

    fn site() -> GroundSite {
        GroundSite::from_degrees("Taipei", 25.03, 121.56)
    }

    fn observations(noise_km: f64) -> Vec<RangeObservation> {
        // Half a day of tracking above 10 degrees: several passes.
        synthesize_observations(&truth(), epoch(), &site(), 43_200.0, 30.0, 10.0, noise_km, 7)
    }

    #[test]
    fn enough_observations_exist() {
        let obs = observations(0.0);
        assert!(obs.len() >= 20, "only {} observations", obs.len());
    }

    #[test]
    fn perfect_data_recovers_truth() {
        let obs = observations(0.0);
        // Perturbed initial guess: +20 km altitude, +0.5 deg inclination,
        // +1 deg RAAN, -2 deg phase.
        let initial = ClassicalElements {
            semi_major_axis_km: truth().semi_major_axis_km + 20.0,
            inclination_rad: truth().inclination_rad + deg_to_rad(0.5),
            raan_rad: truth().raan_rad + deg_to_rad(1.0),
            mean_anomaly_rad: truth().mean_anomaly_rad - deg_to_rad(2.0),
            ..truth()
        };
        let fit = fit_elements(&initial, epoch(), &site(), &obs).expect("fit converges");
        assert!(fit.rms_km < 0.01, "rms {}", fit.rms_km);
        assert!((fit.elements.semi_major_axis_km - truth().semi_major_axis_km).abs() < 0.05);
        assert!((fit.elements.inclination_rad - truth().inclination_rad).abs() < 1e-4);
        assert!(
            crate::math::wrap_pi(fit.elements.raan_rad - truth().raan_rad).abs() < 1e-4,
            "raan {} vs {}",
            fit.elements.raan_rad,
            truth().raan_rad
        );
    }

    #[test]
    fn noisy_data_fits_to_noise_floor() {
        let obs = observations(0.5); // 500 m ranging noise
        let initial = ClassicalElements {
            semi_major_axis_km: truth().semi_major_axis_km + 10.0,
            ..truth()
        };
        let fit = fit_elements(&initial, epoch(), &site(), &obs).expect("fit converges");
        assert!(fit.rms_km < 1.0, "rms {}", fit.rms_km);
        // Element recovery degrades gracefully with noise.
        assert!((fit.elements.semi_major_axis_km - truth().semi_major_axis_km).abs() < 2.0);
    }

    #[test]
    fn too_few_observations_rejected() {
        let obs = vec![RangeObservation { t_offset_s: 0.0, range_km: 1000.0 }; 5];
        assert_eq!(
            fit_elements(&truth(), epoch(), &site(), &obs).unwrap_err(),
            OdError::TooFewObservations
        );
    }

    #[test]
    fn forged_elements_exposed_by_residuals() {
        // The trust story: observations of the *real* satellite cannot be
        // fit by elements claiming a different plane without huge residuals
        // at the initial guess — and a successful fit lands back on the
        // truth, exposing the forgery either way.
        let obs = observations(0.0);
        let forged = ClassicalElements {
            raan_rad: truth().raan_rad + deg_to_rad(20.0),
            ..truth()
        };
        let initial_rms = rms(&pack(&forged), epoch(), &site(), &obs);
        assert!(initial_rms > 100.0, "forged elements misfit by {initial_rms} km");
        if let Ok(fit) = fit_elements(&forged, epoch(), &site(), &obs) {
            // If it converges, it converges to the truth, not the forgery.
            let d = crate::math::wrap_pi(fit.elements.raan_rad - truth().raan_rad).abs();
            assert!(d < deg_to_rad(0.5), "fit raan off truth by {} deg", d.to_degrees());
        }
    }

    #[test]
    fn synthesized_observations_respect_mask() {
        let prop = KeplerJ2::from_elements(&truth(), epoch());
        for o in observations(0.0) {
            let e = epoch().plus_seconds(o.t_offset_s);
            let ecef = eci_to_ecef(prop.position_at(e), e.gmst());
            let s = crate::frames::sin_elevation(site().ecef, site().zenith, ecef);
            assert!(s >= deg_to_rad(10.0).sin() - 1e-12);
            // Range is physically sensible for a 550 km orbit.
            assert!(o.range_km > 500.0 && o.range_km < 2600.0);
        }
    }
}
