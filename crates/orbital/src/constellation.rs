//! Constellation synthesis: Walker patterns and Starlink-like shells.
//!
//! The paper's experiments sample satellites from the real Starlink
//! constellation; since live TLEs are not shippable, this module generates a
//! statistically equivalent constellation: Walker-delta shells with
//! Starlink's published inclination/altitude/plane parameters. Each
//! satellite carries classical elements, a synthesized TLE identity, and the
//! shell it belongs to.

use crate::kepler::ClassicalElements;
use crate::math::{deg_to_rad, wrap_two_pi};
use crate::time::Epoch;
use crate::tle::Tle;
use serde::{Deserialize, Serialize};

/// Specification of one Walker-delta shell.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ShellSpec {
    /// Shell name (used in generated satellite names).
    pub name: String,
    /// Altitude above the mean equatorial radius, km.
    pub altitude_km: f64,
    /// Inclination, degrees.
    pub inclination_deg: f64,
    /// Number of orbital planes.
    pub planes: u32,
    /// Satellites per plane.
    pub sats_per_plane: u32,
    /// Walker phasing factor F in `0..planes`: the inter-plane phase offset
    /// is `F * 360 / (planes * sats_per_plane)` degrees.
    pub phasing: u32,
    /// RAAN of the first plane, degrees.
    pub raan_offset_deg: f64,
}

impl ShellSpec {
    /// The primary Starlink shell: 53.0 degrees, 550 km, 72 planes of 22.
    pub fn starlink_like() -> ShellSpec {
        ShellSpec {
            name: "SHELL1".to_string(),
            altitude_km: 550.0,
            inclination_deg: 53.0,
            planes: 72,
            sats_per_plane: 22,
            phasing: 39,
            raan_offset_deg: 0.0,
        }
    }

    /// The shell used in the paper's Fig. 4b/4c studies: 53 degrees, 546 km.
    pub fn paper_plane() -> ShellSpec {
        ShellSpec {
            name: "PAPER".to_string(),
            altitude_km: 546.0,
            inclination_deg: 53.0,
            planes: 1,
            sats_per_plane: 12,
            phasing: 0,
            raan_offset_deg: 0.0,
        }
    }

    /// Total number of satellites in the shell.
    pub fn count(&self) -> u32 {
        self.planes * self.sats_per_plane
    }
}

/// A generated constellation member.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Satellite {
    /// Stable identifier within the generated constellation.
    pub id: u32,
    /// Human-readable name, e.g. `"SHELL1-P03-S07"`.
    pub name: String,
    /// Shell the satellite belongs to.
    pub shell: String,
    /// Plane index within the shell.
    pub plane: u32,
    /// Slot index within the plane.
    pub slot: u32,
    /// Classical elements at the constellation epoch.
    pub elements: ClassicalElements,
    /// Epoch of the elements.
    pub epoch: Epoch,
}

impl Satellite {
    /// Synthesize the TLE identity of this satellite (drag-free).
    pub fn to_tle(&self) -> Tle {
        Tle::from_elements(&self.name, 90_000 + self.id, &self.elements, self.epoch)
    }
}

/// Generate a Walker-delta pattern for one shell.
///
/// Planes are spread evenly over 360 degrees of RAAN (delta pattern);
/// within a plane, satellites are evenly spaced in mean anomaly; the
/// inter-plane phasing follows the Walker `F` parameter.
pub fn walker_delta(spec: &ShellSpec, epoch: Epoch) -> Vec<Satellite> {
    walker(spec, epoch, 360.0)
}

/// Generate a Walker-star pattern (planes spread over 180 degrees, as used
/// by polar constellations like Iridium or OneWeb).
pub fn walker_star(spec: &ShellSpec, epoch: Epoch) -> Vec<Satellite> {
    walker(spec, epoch, 180.0)
}

fn walker(spec: &ShellSpec, epoch: Epoch, raan_span_deg: f64) -> Vec<Satellite> {
    let total = spec.count();
    let mut sats = Vec::with_capacity(total as usize);
    let inc = deg_to_rad(spec.inclination_deg);
    let phase_unit = 360.0 / total as f64; // degrees of in-plane phase per F
    for plane in 0..spec.planes {
        let raan = deg_to_rad(spec.raan_offset_deg + plane as f64 * raan_span_deg / spec.planes as f64);
        for slot in 0..spec.sats_per_plane {
            let in_plane = 360.0 * slot as f64 / spec.sats_per_plane as f64;
            let walker_phase = spec.phasing as f64 * phase_unit * plane as f64;
            let phase = deg_to_rad(in_plane + walker_phase);
            let id = plane * spec.sats_per_plane + slot;
            sats.push(Satellite {
                id,
                name: format!("{}-P{plane:02}-S{slot:02}", spec.name),
                shell: spec.name.clone(),
                plane,
                slot,
                elements: ClassicalElements::circular(spec.altitude_km, inc, raan, phase),
                epoch,
            });
        }
    }
    sats
}

/// Generate the multi-shell Starlink-like constellation used as the
/// satellite pool for the paper's sampling experiments (~4400 satellites
/// across the four Gen1 shells).
pub fn starlink_gen1_pool(epoch: Epoch) -> Vec<Satellite> {
    let shells = [
        ShellSpec {
            name: "S550".into(),
            altitude_km: 550.0,
            inclination_deg: 53.0,
            planes: 72,
            sats_per_plane: 22,
            phasing: 39,
            raan_offset_deg: 0.0,
        },
        ShellSpec {
            name: "S540".into(),
            altitude_km: 540.0,
            inclination_deg: 53.2,
            planes: 72,
            sats_per_plane: 22,
            phasing: 31,
            raan_offset_deg: 2.5,
        },
        ShellSpec {
            name: "S570".into(),
            altitude_km: 570.0,
            inclination_deg: 70.0,
            planes: 36,
            sats_per_plane: 20,
            phasing: 11,
            raan_offset_deg: 1.0,
        },
        ShellSpec {
            name: "S560".into(),
            altitude_km: 560.0,
            inclination_deg: 97.6,
            planes: 6,
            sats_per_plane: 58,
            phasing: 1,
            raan_offset_deg: 0.5,
        },
    ];
    let mut all = Vec::new();
    let mut id_base = 0u32;
    for spec in &shells {
        let mut sats = walker_delta(spec, epoch);
        for s in &mut sats {
            s.id += id_base;
        }
        id_base += spec.count();
        all.extend(sats);
    }
    all
}

/// A single orbital plane of evenly spaced satellites — the configuration of
/// the paper's Fig. 4b phase-sweep experiment (12 satellites, 30 degrees
/// apart, 53 degrees inclination, 546 km).
pub fn single_plane(count: u32, altitude_km: f64, inclination_deg: f64, epoch: Epoch) -> Vec<Satellite> {
    let spec = ShellSpec {
        name: "PLANE".into(),
        altitude_km,
        inclination_deg,
        planes: 1,
        sats_per_plane: count,
        phasing: 0,
        raan_offset_deg: 0.0,
    };
    walker_delta(&spec, epoch)
}

/// Build one extra satellite in a given shell geometry at an explicit phase
/// (argument of latitude) and RAAN, used by the placement experiments.
pub fn satellite_at(
    name: &str,
    id: u32,
    altitude_km: f64,
    inclination_deg: f64,
    raan_deg: f64,
    phase_deg: f64,
    epoch: Epoch,
) -> Satellite {
    Satellite {
        id,
        name: name.to_string(),
        shell: "CUSTOM".into(),
        plane: 0,
        slot: 0,
        elements: ClassicalElements::circular(
            altitude_km,
            deg_to_rad(inclination_deg),
            deg_to_rad(raan_deg),
            wrap_two_pi(deg_to_rad(phase_deg)),
        ),
        epoch,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::math::rad_to_deg;

    fn epoch() -> Epoch {
        Epoch::from_ymdhms(2024, 6, 1, 0, 0, 0.0)
    }

    #[test]
    fn walker_counts() {
        let spec = ShellSpec::starlink_like();
        let sats = walker_delta(&spec, epoch());
        assert_eq!(sats.len(), 72 * 22);
        // IDs unique and dense.
        let mut ids: Vec<u32> = sats.iter().map(|s| s.id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), sats.len());
    }

    #[test]
    fn planes_evenly_spread_in_raan() {
        let spec = ShellSpec { planes: 8, sats_per_plane: 3, ..ShellSpec::starlink_like() };
        let sats = walker_delta(&spec, epoch());
        for p in 0..8 {
            let raan = rad_to_deg(sats[(p * 3) as usize].elements.raan_rad);
            assert!((raan - p as f64 * 45.0).abs() < 1e-9, "plane {p}: raan {raan}");
        }
    }

    #[test]
    fn star_pattern_spans_half() {
        let spec = ShellSpec { planes: 6, sats_per_plane: 2, ..ShellSpec::starlink_like() };
        let sats = walker_star(&spec, epoch());
        let max_raan = sats
            .iter()
            .map(|s| rad_to_deg(s.elements.raan_rad))
            .fold(0.0f64, f64::max);
        assert!(max_raan < 180.0, "max raan {max_raan}");
    }

    #[test]
    fn in_plane_spacing() {
        let sats = single_plane(12, 546.0, 53.0, epoch());
        assert_eq!(sats.len(), 12);
        for (k, s) in sats.iter().enumerate() {
            let phase = rad_to_deg(s.elements.mean_anomaly_rad);
            assert!((phase - 30.0 * k as f64).abs() < 1e-9, "slot {k}: {phase}");
            assert!((s.elements.inclination_rad.to_degrees() - 53.0).abs() < 1e-12);
        }
    }

    #[test]
    fn walker_phasing_offsets_adjacent_planes() {
        let spec = ShellSpec {
            planes: 4,
            sats_per_plane: 4,
            phasing: 1,
            ..ShellSpec::starlink_like()
        };
        let sats = walker_delta(&spec, epoch());
        // F=1, total 16 -> inter-plane phase offset = 360/16 = 22.5 deg.
        let p0s0 = rad_to_deg(sats[0].elements.mean_anomaly_rad);
        let p1s0 = rad_to_deg(sats[4].elements.mean_anomaly_rad);
        assert!((p1s0 - p0s0 - 22.5).abs() < 1e-9, "{p0s0} vs {p1s0}");
    }

    #[test]
    fn pool_size_and_shell_mix() {
        let pool = starlink_gen1_pool(epoch());
        assert_eq!(pool.len(), 72 * 22 + 72 * 22 + 36 * 20 + 6 * 58);
        let shells: std::collections::HashSet<&str> = pool.iter().map(|s| s.shell.as_str()).collect();
        assert_eq!(shells.len(), 4);
        // IDs unique across shells.
        let mut ids: Vec<u32> = pool.iter().map(|s| s.id).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), pool.len());
    }

    #[test]
    fn satellites_propagate_sanely() {
        use crate::propagator::{KeplerJ2, Propagator};
        let pool = starlink_gen1_pool(epoch());
        for s in pool.iter().step_by(500) {
            let p = KeplerJ2::from_elements(&s.elements, s.epoch);
            let st = p.propagate(epoch().plus_minutes(45.0));
            assert!(st.altitude_km() > 500.0 && st.altitude_km() < 600.0, "{}", s.name);
        }
    }

    #[test]
    fn tle_identity_valid() {
        let sats = single_plane(3, 546.0, 53.0, epoch());
        for s in &sats {
            let tle = s.to_tle();
            let text = tle.to_string();
            let back = crate::tle::Tle::parse(&text).expect("generated TLE must parse");
            assert_eq!(back.norad_id, 90_000 + s.id);
        }
    }

    #[test]
    fn satellite_at_places_phase() {
        let s = satellite_at("X", 1, 546.0, 53.0, 10.0, 45.0, epoch());
        assert!((rad_to_deg(s.elements.mean_anomaly_rad) - 45.0).abs() < 1e-9);
        assert!((rad_to_deg(s.elements.raan_rad) - 10.0).abs() < 1e-9);
    }
}
