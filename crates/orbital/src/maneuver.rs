//! Maneuver planning: the delta-v cost of reaching an orbital slot.
//!
//! The paper's placement argument (§3.3) says participants should deploy
//! *far* from existing satellites — different phase, altitude, or
//! inclination. Those three options have wildly different propellant costs,
//! which is what makes the Fig. 4c comparison an economic trade-off and not
//! just a coverage one. This module prices them with the standard
//! impulsive-maneuver formulas (Vallado ch. 6):
//!
//! * **Hohmann transfer** between circular altitudes;
//! * **plane change** (inclination) at orbital speed — brutally expensive;
//! * **phasing maneuver** — nearly free in delta-v, paid in *time* spent in
//!   a drift orbit.

use crate::earth::{circular_speed_km_s, EARTH_MU_KM3_S2, EARTH_RADIUS_KM};
use serde::{Deserialize, Serialize};

/// Result of a maneuver plan: propellant and clock cost.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ManeuverCost {
    /// Total delta-v, km/s.
    pub delta_v_km_s: f64,
    /// Wall-clock duration of the maneuver, seconds.
    pub duration_s: f64,
}

impl ManeuverCost {
    /// The zero-cost maneuver.
    pub const FREE: ManeuverCost = ManeuverCost { delta_v_km_s: 0.0, duration_s: 0.0 };

    /// Sum of two maneuvers executed sequentially.
    pub fn then(self, next: ManeuverCost) -> ManeuverCost {
        ManeuverCost {
            delta_v_km_s: self.delta_v_km_s + next.delta_v_km_s,
            duration_s: self.duration_s + next.duration_s,
        }
    }

    /// Propellant mass fraction consumed for this delta-v at a specific
    /// impulse `isp_s` (Tsiolkovsky). Typical electric propulsion:
    /// 1500-2500 s; chemical: ~300 s.
    pub fn propellant_fraction(&self, isp_s: f64) -> f64 {
        assert!(isp_s > 0.0);
        let ve = isp_s * 9.80665e-3; // km/s
        1.0 - (-self.delta_v_km_s / ve).exp()
    }
}

/// Delta-v and time for a Hohmann transfer between two circular altitudes.
pub fn hohmann(from_alt_km: f64, to_alt_km: f64) -> ManeuverCost {
    if (from_alt_km - to_alt_km).abs() < 1e-12 {
        return ManeuverCost::FREE;
    }
    let r1 = EARTH_RADIUS_KM + from_alt_km;
    let r2 = EARTH_RADIUS_KM + to_alt_km;
    let mu = EARTH_MU_KM3_S2;
    let a_t = (r1 + r2) / 2.0;
    let v1 = (mu / r1).sqrt();
    let v2 = (mu / r2).sqrt();
    let v_peri = (mu * (2.0 / r1 - 1.0 / a_t)).sqrt();
    let v_apo = (mu * (2.0 / r2 - 1.0 / a_t)).sqrt();
    let dv = (v_peri - v1).abs() + (v2 - v_apo).abs();
    let transfer_time = std::f64::consts::PI * (a_t * a_t * a_t / mu).sqrt();
    ManeuverCost { delta_v_km_s: dv, duration_s: transfer_time }
}

/// Delta-v for a pure inclination change of `delta_i_rad` on a circular
/// orbit at `alt_km` (executed at a node).
pub fn plane_change(alt_km: f64, delta_i_rad: f64) -> ManeuverCost {
    let v = circular_speed_km_s(alt_km);
    ManeuverCost {
        delta_v_km_s: 2.0 * v * (delta_i_rad.abs() / 2.0).sin(),
        duration_s: 0.0,
    }
}

/// A phasing maneuver: change the in-plane phase by `delta_phase_rad`
/// within `revolutions` of drift, by temporarily raising/lowering the
/// orbit. More revolutions = less delta-v but more time.
pub fn phasing(alt_km: f64, delta_phase_rad: f64, revolutions: u32) -> ManeuverCost {
    assert!(revolutions >= 1, "phasing needs at least one drift revolution");
    let r = EARTH_RADIUS_KM + alt_km;
    let mu = EARTH_MU_KM3_S2;
    let period = 2.0 * std::f64::consts::PI * (r * r * r / mu).sqrt();
    // The drift orbit's period must differ so that after `revolutions` the
    // accumulated phase difference equals delta_phase.
    let k = revolutions as f64;
    let target_period = period * (1.0 - delta_phase_rad / (2.0 * std::f64::consts::PI * k));
    let a_t = (mu * (target_period / (2.0 * std::f64::consts::PI)).powi(2)).cbrt();
    let v = (mu / r).sqrt();
    let v_t = (mu * (2.0 / r - 1.0 / a_t)).sqrt();
    // Enter and exit the drift orbit.
    ManeuverCost {
        delta_v_km_s: 2.0 * (v_t - v).abs(),
        duration_s: k * target_period,
    }
}

/// The cheapest-in-delta-v way to change RAAN for a LEO constellation:
/// don't burn at all — drop to a lower altitude and let differential J2
/// nodal regression do the work ("nodal drift maneuver"). Returns the wait
/// time at the drift altitude plus the two Hohmann legs.
pub fn nodal_drift(
    alt_km: f64,
    drift_alt_km: f64,
    inclination_rad: f64,
    delta_raan_rad: f64,
) -> ManeuverCost {
    use crate::earth::EARTH_J2;
    let rate = |a_km: f64| -> f64 {
        let a = EARTH_RADIUS_KM + a_km;
        let n = (EARTH_MU_KM3_S2 / (a * a * a)).sqrt();
        -1.5 * EARTH_J2 * (EARTH_RADIUS_KM / a).powi(2) * n * inclination_rad.cos()
    };
    let differential = rate(drift_alt_km) - rate(alt_km); // rad/s
    assert!(
        differential.abs() > 1e-15,
        "drift altitude must differ from the operating altitude"
    );
    let wait_s = (delta_raan_rad / differential).abs();
    let legs = hohmann(alt_km, drift_alt_km).then(hohmann(drift_alt_km, alt_km));
    ManeuverCost { delta_v_km_s: legs.delta_v_km_s, duration_s: legs.duration_s + wait_s }
}

/// Price the three Fig. 4c placement categories from a common starting slot
/// (the economics behind the coverage comparison).
pub fn category_costs(alt_km: f64) -> [(&'static str, ManeuverCost); 3] {
    [
        ("different inclination (10 deg)", plane_change(alt_km, 10f64.to_radians())),
        ("different altitude (+54 km)", hohmann(alt_km, alt_km + 54.0)),
        ("different phase (45 deg, 30 revs)", phasing(alt_km, 45f64.to_radians(), 30)),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hohmann_leo_to_leo() {
        // 550 -> 600 km is a few tens of m/s.
        let c = hohmann(550.0, 600.0);
        assert!(c.delta_v_km_s > 0.02 && c.delta_v_km_s < 0.04, "dv {}", c.delta_v_km_s);
        // Transfer takes about half an orbit (~48 min).
        assert!((c.duration_s / 60.0 - 48.0).abs() < 2.0, "t {}", c.duration_s / 60.0);
    }

    #[test]
    fn hohmann_leo_to_geo_reference() {
        // Classic textbook value: ~3.9 km/s from a 300 km LEO to GEO.
        let c = hohmann(300.0, 35_786.0);
        assert!((c.delta_v_km_s - 3.9).abs() < 0.1, "dv {}", c.delta_v_km_s);
    }

    #[test]
    fn hohmann_symmetric() {
        let up = hohmann(550.0, 600.0);
        let down = hohmann(600.0, 550.0);
        assert!((up.delta_v_km_s - down.delta_v_km_s).abs() < 1e-12);
        assert_eq!(hohmann(550.0, 550.0), ManeuverCost::FREE);
    }

    #[test]
    fn plane_change_is_expensive() {
        // 10 degrees at LEO speed ~ 1.3 km/s; 60 degrees ~ one full orbital
        // speed.
        let c10 = plane_change(550.0, 10f64.to_radians());
        assert!((c10.delta_v_km_s - 1.32).abs() < 0.05, "dv {}", c10.delta_v_km_s);
        let c60 = plane_change(550.0, 60f64.to_radians());
        let v = circular_speed_km_s(550.0);
        assert!((c60.delta_v_km_s - v).abs() < 1e-9);
    }

    #[test]
    fn phasing_nearly_free_given_time() {
        let fast = phasing(550.0, 45f64.to_radians(), 3);
        let slow = phasing(550.0, 45f64.to_radians(), 30);
        assert!(slow.delta_v_km_s < fast.delta_v_km_s, "more revs, less dv");
        assert!(slow.duration_s > fast.duration_s, "more revs, more time");
        assert!(slow.delta_v_km_s < 0.03, "slow phasing dv {}", slow.delta_v_km_s);
    }

    #[test]
    fn category_economics_order() {
        // The paper's Fig. 4c winner (inclination) is the delta-v loser:
        // phase < altitude << inclination.
        let costs = category_costs(546.0);
        let incl = costs[0].1.delta_v_km_s;
        let alt = costs[1].1.delta_v_km_s;
        let phase = costs[2].1.delta_v_km_s;
        assert!(phase < alt, "phase {phase} < altitude {alt}");
        assert!(alt < incl, "altitude {alt} < inclination {incl}");
        assert!(incl / alt > 10.0, "inclination is an order of magnitude pricier");
    }

    #[test]
    fn nodal_drift_trades_time_for_dv() {
        // 30 degrees of RAAN via a 100 km-lower drift orbit at 53 deg.
        let c = nodal_drift(550.0, 450.0, 53f64.to_radians(), 30f64.to_radians());
        // Two small Hohmann legs only.
        assert!(c.delta_v_km_s < 0.15, "dv {}", c.delta_v_km_s);
        // But months of waiting.
        assert!(c.duration_s > 30.0 * 86_400.0, "wait {} days", c.duration_s / 86_400.0);
        // Compare with brute force: rotating the plane directly would cost
        // km/s-class delta-v (plane rotation ~ v * delta_raan * sin(i)).
        let brute = circular_speed_km_s(550.0) * 30f64.to_radians() * 53f64.to_radians().sin();
        assert!(c.delta_v_km_s < brute / 10.0);
    }

    #[test]
    fn propellant_fraction_tsiolkovsky() {
        let c = ManeuverCost { delta_v_km_s: 1.0, duration_s: 0.0 };
        // Electric propulsion (isp 2000 s): ve = 19.6 km/s.
        let f = c.propellant_fraction(2000.0);
        assert!((f - (1.0 - (-1.0f64 / 19.6133).exp())).abs() < 1e-9);
        assert!(f > 0.0 && f < 0.06);
        // Chemical (isp 300): much worse.
        assert!(c.propellant_fraction(300.0) > 0.28);
    }

    #[test]
    fn then_accumulates() {
        let a = hohmann(550.0, 600.0);
        let b = plane_change(600.0, 0.05);
        let c = a.then(b);
        assert!((c.delta_v_km_s - a.delta_v_km_s - b.delta_v_km_s).abs() < 1e-12);
        assert!((c.duration_s - a.duration_s).abs() < 1e-12);
    }
}

/// Atmospheric density at altitude (km above the mean equatorial radius),
/// kg/m^3 — piecewise-exponential fit (Vallado Table 8-4, abbreviated to
/// the LEO band). Static (mean solar activity) — good to a factor of ~2,
/// which is the honest accuracy of any static density model.
pub fn atmosphere_density_kg_m3(altitude_km: f64) -> f64 {
    // (base altitude, base density kg/m^3, scale height km)
    const SEGMENTS: [(f64, f64, f64); 8] = [
        (200.0, 2.789e-10, 37.105),
        (250.0, 7.248e-11, 45.546),
        (300.0, 2.418e-11, 53.628),
        (350.0, 9.518e-12, 53.298),
        (400.0, 3.725e-12, 58.515),
        (450.0, 1.585e-12, 60.828),
        (500.0, 6.967e-13, 63.822),
        (600.0, 1.454e-13, 71.835),
    ];
    assert!(altitude_km >= 200.0, "model valid above 200 km, got {altitude_km}");
    let seg = SEGMENTS
        .iter()
        .rev()
        .find(|(h0, _, _)| altitude_km >= *h0)
        .expect("altitude above the first segment");
    seg.1 * (-(altitude_km - seg.0) / seg.2).exp()
}

/// Annual delta-v (km/s per year) to hold a circular orbit against drag,
/// for a spacecraft with ballistic coefficient inputs `cd` (drag
/// coefficient, ~2.2) and `area_over_mass_m2_kg` (m^2/kg).
///
/// Continuous-compensation model: the thruster cancels the mean drag
/// deceleration `0.5 * rho * v^2 * Cd * A/m`.
pub fn drag_makeup_dv_per_year_km_s(altitude_km: f64, cd: f64, area_over_mass_m2_kg: f64) -> f64 {
    let rho = atmosphere_density_kg_m3(altitude_km);
    let v_m_s = crate::earth::circular_speed_km_s(altitude_km) * 1000.0;
    let accel_m_s2 = 0.5 * rho * v_m_s * v_m_s * cd * area_over_mass_m2_kg;
    accel_m_s2 * 365.25 * 86_400.0 / 1000.0
}

#[cfg(test)]
mod drag_tests {
    use super::*;

    #[test]
    fn density_decreases_with_altitude() {
        let mut last = f64::MAX;
        for alt in [200.0, 300.0, 400.0, 500.0, 550.0, 600.0, 800.0] {
            let rho = atmosphere_density_kg_m3(alt);
            assert!(rho < last, "density must fall with altitude at {alt}");
            assert!(rho > 0.0);
            last = rho;
        }
    }

    #[test]
    fn density_reference_points() {
        // Table anchors reproduce exactly at segment bases.
        assert!((atmosphere_density_kg_m3(400.0) / 3.725e-12 - 1.0).abs() < 1e-6);
        assert!((atmosphere_density_kg_m3(500.0) / 6.967e-13 - 1.0).abs() < 1e-6);
        // 550 km sits between the anchors.
        let rho550 = atmosphere_density_kg_m3(550.0);
        assert!(rho550 < 6.967e-13 && rho550 > 1.454e-13, "rho(550) = {rho550}");
    }

    #[test]
    fn starlink_class_station_keeping_budget() {
        // Starlink-class satellite: Cd ~2.2, A/m ~ 0.04 m^2/kg at 550 km:
        // published station-keeping budgets are tens of m/s per year.
        let dv = drag_makeup_dv_per_year_km_s(550.0, 2.2, 0.04) * 1000.0; // m/s
        assert!((2.0..80.0).contains(&dv), "dv {dv} m/s per year");
    }

    #[test]
    fn higher_orbits_are_cheaper_to_keep() {
        let low = drag_makeup_dv_per_year_km_s(350.0, 2.2, 0.04);
        let mid = drag_makeup_dv_per_year_km_s(550.0, 2.2, 0.04);
        let high = drag_makeup_dv_per_year_km_s(800.0, 2.2, 0.04);
        assert!(low > 10.0 * mid, "350 km is drag hell: {low} vs {mid}");
        assert!(mid > 10.0 * high, "550 vs 800: {mid} vs {high}");
    }

    #[test]
    fn lifetime_propellant_fits_design_life() {
        // Five years of drag makeup at 550 km must fit a small electric
        // propellant budget (Tsiolkovsky with isp 1500).
        let dv5 = 5.0 * drag_makeup_dv_per_year_km_s(550.0, 2.2, 0.04);
        let cost = ManeuverCost { delta_v_km_s: dv5, duration_s: 0.0 };
        let frac = cost.propellant_fraction(1500.0);
        assert!(frac < 0.05, "5-year drag makeup uses {frac} of wet mass");
    }

    #[test]
    #[should_panic(expected = "model valid above 200")]
    fn below_model_floor_panics() {
        atmosphere_density_kg_m3(150.0);
    }
}
