//! Ground sites, visibility predicates, and pass prediction.
//!
//! A [`GroundSite`] precomputes its ECEF position and zenith direction so
//! the per-step visibility predicate is a handful of flops — this predicate
//! is evaluated hundreds of millions of times in the coverage experiments.

use crate::frames::{geodetic_to_ecef, look_angles, sin_elevation, site_zenith, Geodetic, LookAngles};
use crate::math::Vec3;
use crate::propagator::Propagator;
use crate::time::Epoch;
use serde::{Deserialize, Serialize};

/// A fixed site on the ground (user terminal, ground station, or receiver).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GroundSite {
    /// Site name.
    pub name: String,
    /// Geodetic position.
    pub geodetic: Geodetic,
    /// Precomputed ECEF position, km.
    pub ecef: Vec3,
    /// Precomputed geodetic zenith unit vector in ECEF.
    pub zenith: Vec3,
}

impl GroundSite {
    /// Create a site from a name and geodetic position.
    pub fn new(name: impl Into<String>, geodetic: Geodetic) -> Self {
        GroundSite {
            name: name.into(),
            ecef: geodetic_to_ecef(geodetic),
            zenith: site_zenith(geodetic),
            geodetic,
        }
    }

    /// Create a site from degrees latitude/longitude at sea level.
    pub fn from_degrees(name: impl Into<String>, lat_deg: f64, lon_deg: f64) -> Self {
        Self::new(name, Geodetic::from_degrees(lat_deg, lon_deg, 0.0))
    }

    /// Is a target at the given ECEF position above `min_elevation_rad`?
    #[inline]
    pub fn sees_ecef(&self, target_ecef: Vec3, min_elevation_rad: f64) -> bool {
        sin_elevation(self.ecef, self.zenith, target_ecef) >= min_elevation_rad.sin()
    }

    /// Same predicate with the sine of the mask precomputed by the caller
    /// (the hot loop of the simulator).
    #[inline]
    pub fn sees_ecef_sin(&self, target_ecef: Vec3, sin_mask: f64) -> bool {
        sin_elevation(self.ecef, self.zenith, target_ecef) >= sin_mask
    }

    /// Full look angles to a target in ECEF.
    pub fn look_angles(&self, target_ecef: Vec3) -> LookAngles {
        look_angles(self.geodetic, self.ecef, target_ecef)
    }
}

/// One satellite pass over a site.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Pass {
    /// Rise time (first step at/above the mask).
    pub rise: Epoch,
    /// Set time (last step at/above the mask).
    pub set: Epoch,
    /// Maximum elevation during the pass, radians.
    pub max_elevation_rad: f64,
    /// Epoch of maximum elevation.
    pub culmination: Epoch,
}

impl Pass {
    /// Pass duration in seconds.
    pub fn duration_s(&self) -> f64 {
        self.set.seconds_since(&self.rise)
    }
}

/// Predict passes of one satellite over a site between `start` and `end`
/// by sampling every `step_s` seconds against the elevation mask.
///
/// The step granularity bounds rise/set accuracy; 10–30 s is plenty for
/// coverage statistics (LEO passes last several minutes).
pub fn predict_passes(
    propagator: &dyn Propagator,
    site: &GroundSite,
    start: Epoch,
    end: Epoch,
    step_s: f64,
    min_elevation_deg: f64,
) -> Vec<Pass> {
    assert!(step_s > 0.0, "step must be positive");
    let sin_mask = min_elevation_deg.to_radians().sin();
    let mut passes = Vec::new();
    let mut current: Option<(Epoch, Epoch, f64, Epoch)> = None; // rise, last, max_el, culm
    let steps = (end.seconds_since(&start) / step_s).ceil() as u64;
    for k in 0..=steps {
        let t = start.plus_seconds(k as f64 * step_s);
        let eci = propagator.position_at(t);
        let ecef = crate::frames::eci_to_ecef(eci, t.gmst());
        let s = sin_elevation(site.ecef, site.zenith, ecef);
        if s >= sin_mask {
            let el = s.clamp(-1.0, 1.0).asin();
            current = match current {
                None => Some((t, t, el, t)),
                Some((rise, _, max_el, culm)) => {
                    if el > max_el {
                        Some((rise, t, el, t))
                    } else {
                        Some((rise, t, max_el, culm))
                    }
                }
            };
        } else if let Some((rise, set, max_el, culm)) = current.take() {
            passes.push(Pass { rise, set, max_elevation_rad: max_el, culmination: culm });
        }
    }
    if let Some((rise, set, max_el, culm)) = current {
        passes.push(Pass { rise, set, max_elevation_rad: max_el, culmination: culm });
    }
    passes
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kepler::ClassicalElements;
    use crate::math::deg_to_rad;
    use crate::propagator::KeplerJ2;

    fn epoch() -> Epoch {
        Epoch::from_ymdhms(2024, 6, 1, 0, 0, 0.0)
    }

    fn taipei() -> GroundSite {
        GroundSite::from_degrees("Taipei", 25.03, 121.56)
    }

    #[test]
    fn site_precomputations_consistent() {
        let s = taipei();
        assert!((s.ecef.norm() - 6370.0).abs() < 20.0);
        assert!((s.zenith.norm() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn sees_overhead() {
        let s = taipei();
        let overhead = geodetic_to_ecef(Geodetic::from_degrees(25.03, 121.56, 550.0));
        assert!(s.sees_ecef(overhead, deg_to_rad(85.0)));
        let far = geodetic_to_ecef(Geodetic::from_degrees(-25.0, -60.0, 550.0));
        assert!(!s.sees_ecef(far, deg_to_rad(5.0)));
    }

    #[test]
    fn pass_prediction_finds_passes() {
        // An orbit whose plane passes over Taipei's latitude.
        let el = ClassicalElements::circular(550.0, deg_to_rad(53.0), deg_to_rad(30.0), 0.0);
        let p = KeplerJ2::from_elements(&el, epoch());
        let passes = predict_passes(&p, &taipei(), epoch(), epoch().plus_days(1.0), 10.0, 25.0);
        // At 25 deg mask, a single satellite typically achieves a handful of
        // short passes per day over a mid-latitude site.
        assert!(!passes.is_empty(), "expected at least one pass in a day");
        for pass in &passes {
            let d = pass.duration_s();
            assert!(d < 15.0 * 60.0, "pass too long: {d} s");
            assert!(pass.max_elevation_rad >= deg_to_rad(25.0) - 1e-9);
            assert!(pass.culmination >= pass.rise && pass.culmination <= pass.set);
        }
    }

    #[test]
    fn total_visible_time_small_fraction() {
        // Key premise of the paper (Sec. 2): one satellite covers a given
        // site for only minutes per day.
        let el = ClassicalElements::circular(550.0, deg_to_rad(53.0), deg_to_rad(30.0), 0.0);
        let p = KeplerJ2::from_elements(&el, epoch());
        let passes = predict_passes(&p, &taipei(), epoch(), epoch().plus_days(1.0), 10.0, 25.0);
        let total: f64 = passes.iter().map(|p| p.duration_s()).sum();
        assert!(total < 30.0 * 60.0, "visible {total} s in a day");
    }

    #[test]
    fn lower_mask_gives_more_coverage() {
        let el = ClassicalElements::circular(550.0, deg_to_rad(53.0), deg_to_rad(30.0), 0.0);
        let p = KeplerJ2::from_elements(&el, epoch());
        let hi: f64 = predict_passes(&p, &taipei(), epoch(), epoch().plus_days(1.0), 10.0, 40.0)
            .iter()
            .map(|p| p.duration_s())
            .sum();
        let lo: f64 = predict_passes(&p, &taipei(), epoch(), epoch().plus_days(1.0), 10.0, 10.0)
            .iter()
            .map(|p| p.duration_s())
            .sum();
        assert!(lo > hi, "mask 10deg gives {lo}s vs 40deg {hi}s");
    }

    #[test]
    fn equatorial_orbit_never_seen_from_high_latitude() {
        let el = ClassicalElements::circular(550.0, 0.0, 0.0, 0.0);
        let p = KeplerJ2::from_elements(&el, epoch());
        let oslo = GroundSite::from_degrees("Oslo", 59.9, 10.7);
        let passes = predict_passes(&p, &oslo, epoch(), epoch().plus_days(1.0), 30.0, 25.0);
        assert!(passes.is_empty());
    }
}
