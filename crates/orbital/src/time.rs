//! Time systems: UTC epochs, Julian dates, and sidereal time.
//!
//! All simulation time in the workspace flows through [`Epoch`], an absolute
//! UTC instant stored as a Julian date split into an integer-ish day part and
//! a fractional seconds-of-day part to preserve sub-millisecond precision
//! over multi-week simulations.
//!
//! Leap seconds are intentionally ignored: every consumer of this crate works
//! with *relative* time spans of at most weeks, and the TLE format itself is
//! quoted in UTC without leap-second bookkeeping.

use crate::math::wrap_two_pi;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Julian date of the J2000.0 reference epoch (2000-01-01 12:00:00 TT,
/// treated as UTC here).
pub const JD_J2000: f64 = 2_451_545.0;

/// Julian date of the Unix epoch (1970-01-01 00:00:00 UTC).
pub const JD_UNIX: f64 = 2_440_587.5;

/// Seconds per day.
pub const SECONDS_PER_DAY: f64 = 86_400.0;

/// An absolute instant in UTC.
///
/// Internally stored as `(jd_midnight, seconds_of_day)` where `jd_midnight`
/// is the Julian date at the preceding UTC midnight (so it always ends in
/// `.5`) and `seconds_of_day` is in `[0, 86400)`. This split keeps arithmetic
/// exact to well below a microsecond across any span this workspace uses.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct Epoch {
    jd_midnight: f64,
    seconds_of_day: f64,
}

impl Epoch {
    /// Build an epoch from a calendar date and time of day (UTC).
    ///
    /// `year` is the full year (e.g. 2024), `month` in 1..=12, `day` in
    /// 1..=31, `hour` in 0..24, `minute` in 0..60, and `second` may carry a
    /// fractional part. Uses the standard Fliegel–Van Flandern algorithm,
    /// valid for all Gregorian dates after 1582.
    pub fn from_ymdhms(year: i32, month: u32, day: u32, hour: u32, minute: u32, second: f64) -> Self {
        assert!((1..=12).contains(&month), "month out of range: {month}");
        assert!((1..=31).contains(&day), "day out of range: {day}");
        assert!(hour < 24, "hour out of range: {hour}");
        assert!(minute < 60, "minute out of range: {minute}");
        assert!((0.0..60.0).contains(&second), "second out of range: {second}");
        let y = year as i64;
        let m = month as i64;
        let d = day as i64;
        // Fliegel & Van Flandern (1968): JDN of the calendar day at noon.
        let jdn = (1461 * (y + 4800 + (m - 14) / 12)) / 4
            + (367 * (m - 2 - 12 * ((m - 14) / 12))) / 12
            - (3 * ((y + 4900 + (m - 14) / 12) / 100)) / 4
            + d
            - 32075;
        let jd_midnight = jdn as f64 - 0.5;
        let seconds_of_day = hour as f64 * 3600.0 + minute as f64 * 60.0 + second;
        Epoch { jd_midnight, seconds_of_day }.rebalanced()
    }

    /// Build an epoch from a raw Julian date.
    pub fn from_jd(jd: f64) -> Self {
        let jd_midnight = (jd - 0.5).floor() + 0.5;
        let seconds_of_day = (jd - jd_midnight) * SECONDS_PER_DAY;
        Epoch { jd_midnight, seconds_of_day }.rebalanced()
    }

    /// Build an epoch from the TLE convention: two-digit-style year (full
    /// year accepted) and fractional day of year (1.0 == Jan 1, 00:00 UTC).
    pub fn from_year_doy(year: i32, day_of_year: f64) -> Self {
        let jan1 = Epoch::from_ymdhms(year, 1, 1, 0, 0, 0.0);
        jan1.plus_seconds((day_of_year - 1.0) * SECONDS_PER_DAY)
    }

    /// The Julian date of this epoch.
    pub fn jd(&self) -> f64 {
        self.jd_midnight + self.seconds_of_day / SECONDS_PER_DAY
    }

    /// Days elapsed since the J2000.0 epoch.
    pub fn days_since_j2000(&self) -> f64 {
        (self.jd_midnight - JD_J2000) + self.seconds_of_day / SECONDS_PER_DAY
    }

    /// Julian centuries of 36525 days since J2000.0.
    pub fn centuries_since_j2000(&self) -> f64 {
        self.days_since_j2000() / 36_525.0
    }

    /// A new epoch offset by the given number of seconds (may be negative).
    pub fn plus_seconds(&self, seconds: f64) -> Epoch {
        Epoch {
            jd_midnight: self.jd_midnight,
            seconds_of_day: self.seconds_of_day + seconds,
        }
        .rebalanced()
    }

    /// A new epoch offset by the given number of minutes.
    pub fn plus_minutes(&self, minutes: f64) -> Epoch {
        self.plus_seconds(minutes * 60.0)
    }

    /// A new epoch offset by the given number of days.
    pub fn plus_days(&self, days: f64) -> Epoch {
        let whole = days.trunc();
        let frac = days - whole;
        Epoch {
            jd_midnight: self.jd_midnight + whole,
            seconds_of_day: self.seconds_of_day + frac * SECONDS_PER_DAY,
        }
        .rebalanced()
    }

    /// Signed seconds from `other` to `self` (positive if `self` is later).
    pub fn seconds_since(&self, other: &Epoch) -> f64 {
        (self.jd_midnight - other.jd_midnight) * SECONDS_PER_DAY
            + (self.seconds_of_day - other.seconds_of_day)
    }

    /// Signed minutes from `other` to `self`.
    pub fn minutes_since(&self, other: &Epoch) -> f64 {
        self.seconds_since(other) / 60.0
    }

    /// Greenwich Mean Sidereal Time at this epoch, radians in `[0, 2pi)`.
    ///
    /// IAU 1982 model (Aoki et al.), the same model SGP4 reference code uses
    /// for TEME-to-ECEF conversion. Accurate to well under an arcsecond over
    /// the decades around J2000, far beyond what link-geometry needs.
    pub fn gmst(&self) -> f64 {
        // Compute using UT1 ~= UTC. Split for precision: GMST at 0h plus
        // rotation within the day.
        let t = (self.jd_midnight - JD_J2000) / 36_525.0; // centuries at 0h
        let gmst0h_sec = 24_110.548_41 + 8_640_184.812_866 * t + 0.093_104 * t * t
            - 6.2e-6 * t * t * t;
        // Ratio of sidereal to solar time.
        let ratio = 1.002_737_909_350_795 + 5.900_6e-11 * t - 5.9e-15 * t * t;
        let gmst_sec = gmst0h_sec + self.seconds_of_day * ratio;
        wrap_two_pi(gmst_sec / 240.0 * std::f64::consts::PI / 180.0)
    }

    /// Calendar date `(year, month, day)` of this epoch (UTC).
    pub fn ymd(&self) -> (i32, u32, u32) {
        // Inverse Fliegel & Van Flandern.
        let jdn = (self.jd_midnight + 0.5) as i64;
        let l = jdn + 68_569;
        let n = (4 * l) / 146_097;
        let l = l - (146_097 * n + 3) / 4;
        let i = (4000 * (l + 1)) / 1_461_001;
        let l = l - (1461 * i) / 4 + 31;
        let j = (80 * l) / 2447;
        let d = l - (2447 * j) / 80;
        let l = j / 11;
        let m = j + 2 - 12 * l;
        let y = 100 * (n - 49) + i + l;
        (y as i32, m as u32, d as u32)
    }

    /// Time of day `(hour, minute, second)` of this epoch (UTC).
    pub fn hms(&self) -> (u32, u32, f64) {
        let s = self.seconds_of_day;
        let hour = (s / 3600.0) as u32;
        let minute = ((s - hour as f64 * 3600.0) / 60.0) as u32;
        let second = s - hour as f64 * 3600.0 - minute as f64 * 60.0;
        (hour.min(23), minute.min(59), second)
    }

    /// The exact internal representation `(jd_midnight, seconds_of_day)`.
    ///
    /// Together with [`Epoch::from_jd_parts`] this round-trips an epoch
    /// bit-for-bit, unlike going through the single-f64 [`Epoch::jd`] (which
    /// loses tens of microseconds at JD magnitudes). Binary serializers (the
    /// leosim ephemeris cache) depend on this exactness.
    pub fn jd_parts(&self) -> (f64, f64) {
        (self.jd_midnight, self.seconds_of_day)
    }

    /// Rebuild an epoch from the parts returned by [`Epoch::jd_parts`].
    pub fn from_jd_parts(jd_midnight: f64, seconds_of_day: f64) -> Self {
        Epoch { jd_midnight, seconds_of_day }.rebalanced()
    }

    /// Day of year with fractional part, in the TLE convention
    /// (1.0 == Jan 1 00:00 UTC).
    pub fn day_of_year(&self) -> f64 {
        let (y, _, _) = self.ymd();
        let jan1 = Epoch::from_ymdhms(y, 1, 1, 0, 0, 0.0);
        self.seconds_since(&jan1) / SECONDS_PER_DAY + 1.0
    }

    /// The year of this epoch.
    pub fn year(&self) -> i32 {
        self.ymd().0
    }

    fn rebalanced(mut self) -> Self {
        while self.seconds_of_day < 0.0 {
            self.seconds_of_day += SECONDS_PER_DAY;
            self.jd_midnight -= 1.0;
        }
        while self.seconds_of_day >= SECONDS_PER_DAY {
            self.seconds_of_day -= SECONDS_PER_DAY;
            self.jd_midnight += 1.0;
        }
        self
    }
}

impl PartialEq for Epoch {
    fn eq(&self, other: &Self) -> bool {
        self.seconds_since(other).abs() < 1e-9
    }
}

impl PartialOrd for Epoch {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        self.seconds_since(other).partial_cmp(&0.0)
    }
}

impl fmt::Display for Epoch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let (y, m, d) = self.ymd();
        let (hh, mm, ss) = self.hms();
        write!(f, "{y:04}-{m:02}-{d:02}T{hh:02}:{mm:02}:{ss:06.3}Z")
    }
}

/// Format a duration given in seconds as a compact human string like
/// `"1d 16h 03m"` or `"4h 12m"` or `"37m 12s"`.
pub fn format_duration(seconds: f64) -> String {
    let neg = seconds < 0.0;
    let s = seconds.abs();
    let days = (s / 86_400.0) as u64;
    let hours = ((s % 86_400.0) / 3600.0) as u64;
    let mins = ((s % 3600.0) / 60.0) as u64;
    let secs = s % 60.0;
    let sign = if neg { "-" } else { "" };
    if days > 0 {
        format!("{sign}{days}d {hours:02}h {mins:02}m")
    } else if hours > 0 {
        format!("{sign}{hours}h {mins:02}m")
    } else if mins > 0 {
        format!("{sign}{mins}m {secs:02.0}s")
    } else {
        format!("{sign}{secs:.1}s")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn j2000_roundtrip() {
        let e = Epoch::from_ymdhms(2000, 1, 1, 12, 0, 0.0);
        assert!((e.jd() - JD_J2000).abs() < 1e-9);
        assert!(e.days_since_j2000().abs() < 1e-9);
    }

    #[test]
    fn unix_epoch_jd() {
        let e = Epoch::from_ymdhms(1970, 1, 1, 0, 0, 0.0);
        assert!((e.jd() - JD_UNIX).abs() < 1e-9);
    }

    #[test]
    fn known_julian_dates() {
        // Vallado example: 1996-10-26 14:20:00 UTC -> JD 2450383.09722222.
        let e = Epoch::from_ymdhms(1996, 10, 26, 14, 20, 0.0);
        assert!((e.jd() - 2_450_383.097_222_22).abs() < 1e-7, "jd={}", e.jd());
    }

    #[test]
    fn jd_parts_roundtrip_is_exact() {
        let e = Epoch::from_ymdhms(2024, 6, 1, 13, 37, 12.345_678_9).plus_seconds(123_456.789);
        let (jdm, sod) = e.jd_parts();
        let back = Epoch::from_jd_parts(jdm, sod);
        let (jdm2, sod2) = back.jd_parts();
        // Bit-exact, not merely close: the ephemeris cache depends on it.
        assert_eq!(jdm.to_bits(), jdm2.to_bits());
        assert_eq!(sod.to_bits(), sod2.to_bits());
        assert_eq!(e.seconds_since(&back), 0.0);
    }

    #[test]
    fn ymd_roundtrip() {
        for &(y, m, d) in &[(1999, 12, 31), (2000, 2, 29), (2024, 6, 1), (2100, 3, 1)] {
            let e = Epoch::from_ymdhms(y, m, d, 7, 31, 12.25);
            assert_eq!(e.ymd(), (y, m, d));
            let (hh, mm, ss) = e.hms();
            assert_eq!((hh, mm), (7, 31));
            assert!((ss - 12.25).abs() < 1e-6);
        }
    }

    #[test]
    fn arithmetic_consistency() {
        let e = Epoch::from_ymdhms(2024, 6, 1, 0, 0, 0.0);
        let later = e.plus_days(7.0).plus_seconds(-3600.0);
        assert!((later.seconds_since(&e) - (7.0 * 86_400.0 - 3600.0)).abs() < 1e-6);
        assert!(later > e);
        assert!(e < later);
    }

    #[test]
    fn rebalance_across_midnight() {
        let e = Epoch::from_ymdhms(2024, 6, 1, 23, 59, 30.0);
        let later = e.plus_seconds(45.0);
        assert_eq!(later.ymd(), (2024, 6, 2));
        let (hh, mm, ss) = later.hms();
        assert_eq!((hh, mm), (0, 0));
        assert!((ss - 15.0).abs() < 1e-9);
    }

    #[test]
    fn gmst_reference_value() {
        // Vallado, Example 3-5: 1992-08-20 12:14:00 UT1,
        // GMST = 152.578787886 deg.
        let e = Epoch::from_ymdhms(1992, 8, 20, 12, 14, 0.0);
        let gmst_deg = e.gmst() * 180.0 / std::f64::consts::PI;
        assert!((gmst_deg - 152.578_787_886).abs() < 1e-4, "gmst={gmst_deg}");
    }

    #[test]
    fn gmst_advances_sidereal_rate() {
        let e = Epoch::from_ymdhms(2024, 6, 1, 0, 0, 0.0);
        let g0 = e.gmst();
        let g1 = e.plus_seconds(86164.0905).gmst(); // one sidereal day
        let diff = crate::math::wrap_pi(g1 - g0);
        assert!(diff.abs() < 1e-5, "sidereal day drift {diff}");
    }

    #[test]
    fn day_of_year_convention() {
        let e = Epoch::from_year_doy(2024, 153.5);
        // 2024 is a leap year: day 153 is June 1; .5 = noon.
        assert_eq!(e.ymd(), (2024, 6, 1));
        assert_eq!(e.hms().0, 12);
        assert!((e.day_of_year() - 153.5).abs() < 1e-9);
    }

    #[test]
    fn display_format() {
        let e = Epoch::from_ymdhms(2024, 6, 1, 5, 4, 3.5);
        assert_eq!(format!("{e}"), "2024-06-01T05:04:03.500Z");
    }

    #[test]
    fn duration_formatting() {
        assert_eq!(format_duration(30.0), "30.0s");
        assert_eq!(format_duration(125.0), "2m 05s");
        assert_eq!(format_duration(4.0 * 3600.0 + 12.0 * 60.0), "4h 12m");
        assert_eq!(format_duration(86_400.0 + 16.0 * 3600.0 + 180.0), "1d 16h 03m");
        assert_eq!(format_duration(-90.0), "-1m 30s");
    }
}
