//! Wire-codec throughput: encode/decode cost per protocol frame.

use bytes::BytesMut;
use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use dcp::crypto::KeyDirectory;
use dcp::messages::{GossipItem, Message};
use dcp::poc::CoverageReceipt;
use dcp::wire::{decode, encode};

fn keys() -> KeyDirectory {
    let mut k = KeyDirectory::new();
    k.register_derived("gs", b"bench");
    k
}

fn payload(n: usize) -> Message {
    let k = keys();
    let items: Vec<GossipItem> = (0..n)
        .map(|i| {
            GossipItem::Receipt(
                CoverageReceipt::create(&k, i as u32, "gs", "owner", i as f64, 45.0).unwrap(),
            )
        })
        .collect();
    Message::GossipPayload { items }
}

fn bench_codec(c: &mut Criterion) {
    for n in [1usize, 100] {
        let msg = payload(n);
        let frame = encode(&msg).unwrap();
        let mut g = c.benchmark_group(format!("wire_{n}_receipts"));
        g.throughput(Throughput::Bytes(frame.len() as u64));
        g.bench_function("encode", |b| b.iter(|| std::hint::black_box(encode(&msg).unwrap())));
        g.bench_function("decode", |b| {
            b.iter(|| {
                let mut buf = BytesMut::from(&frame[..]);
                std::hint::black_box(decode(&mut buf).unwrap().unwrap())
            })
        });
        g.finish();
    }
}

fn bench_signing(c: &mut Criterion) {
    let k = keys();
    c.bench_function("hmac_sign_receipt", |b| {
        b.iter(|| {
            std::hint::black_box(CoverageReceipt::create(&k, 1, "gs", "owner", 60.0, 45.0).unwrap())
        })
    });
    c.bench_function("sha256_1kib", |b| {
        let data = vec![0xA5u8; 1024];
        b.iter(|| std::hint::black_box(dcp::crypto::sha256(&data)))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_secs(3)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_codec, bench_signing
}
criterion_main!(benches);
