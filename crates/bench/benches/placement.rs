//! Placement-optimizer benchmarks: marginal-gain evaluation and greedy
//! selection, the inner loops of the §3.3 planning experiments.

use criterion::{criterion_group, criterion_main, Criterion};
use leosim::visibility::{SimConfig, VisibilityTable};
use leosim::TimeGrid;
use mpleo::placement::{greedy_select, marginal_gain_s};
use orbital::constellation::{walker_delta, ShellSpec};
use orbital::time::Epoch;

fn setup() -> (VisibilityTable, Vec<f64>) {
    let epoch = Epoch::from_ymdhms(2024, 6, 1, 0, 0, 0.0);
    let spec = ShellSpec { planes: 12, sats_per_plane: 10, ..ShellSpec::starlink_like() };
    let sats = walker_delta(&spec, epoch);
    let cities = geodata::paper_cities();
    let sites = geodata::to_sites(&cities);
    let weights = geodata::population_weights(&cities);
    let grid = TimeGrid::new(epoch, 86_400.0, 120.0);
    (VisibilityTable::compute(&sats, &sites, &grid, &SimConfig::default()), weights)
}

fn bench_placement(c: &mut Criterion) {
    let (vt, weights) = setup();
    let base: Vec<usize> = (0..60).collect();

    c.bench_function("marginal_gain_60base_21cities", |b| {
        b.iter(|| std::hint::black_box(marginal_gain_s(&vt, &base, 100, &weights)))
    });

    let candidates: Vec<usize> = (60..120).collect();
    c.bench_function("greedy_select_5_of_60", |b| {
        b.iter(|| std::hint::black_box(greedy_select(&vt, &base, &candidates, 5, &weights)))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(5)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_placement
}
criterion_main!(benches);
