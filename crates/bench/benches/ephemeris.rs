//! Ephemeris-layer benchmarks: the one-time cost of building the columnar
//! `EphemerisStore`, and what the store buys — the visibility kernel run
//! from precomputed positions vs the fused propagate-and-test path.
//!
//! The ratio between `visibility_from_store` and the one-shot
//! `VisibilityTable::compute` is the amortized saving every extra consumer
//! of the same store enjoys (e.g. `ablation_elevation` runs three masks off
//! one build: ~3x less propagation than the pre-store code).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use leosim::ephemeris::EphemerisStore;
use leosim::visibility::{SimConfig, VisibilityTable};
use leosim::TimeGrid;
use orbital::constellation::{walker_delta, ShellSpec};
use orbital::time::Epoch;

fn epoch() -> Epoch {
    Epoch::from_ymdhms(2024, 6, 1, 0, 0, 0.0)
}

fn bench_store_build(c: &mut Criterion) {
    let grid = TimeGrid::new(epoch(), 6.0 * 3600.0, 120.0);
    let cfg = SimConfig::default();
    let mut g = c.benchmark_group("ephemeris_store_build_6h");
    for sats in [50u32, 200] {
        let spec =
            ShellSpec { planes: sats / 10, sats_per_plane: 10, ..ShellSpec::starlink_like() };
        let constellation = walker_delta(&spec, epoch());
        g.bench_with_input(BenchmarkId::from_parameter(sats), &constellation, |b, cons| {
            b.iter(|| std::hint::black_box(EphemerisStore::build(cons, &grid, &cfg)))
        });
    }
    g.finish();
}

fn bench_visibility_from_store(c: &mut Criterion) {
    // Geometry kernel only: elevation tests against already-propagated
    // positions. Compare with `visibility_table_6h_21cities` (same shape,
    // propagation fused in) to see the split between the two costs.
    let sites = geodata::to_sites(&geodata::paper_cities());
    let grid = TimeGrid::new(epoch(), 6.0 * 3600.0, 120.0);
    let cfg = SimConfig::default();
    let mut g = c.benchmark_group("visibility_from_store_6h_21cities");
    for sats in [50u32, 200] {
        let spec =
            ShellSpec { planes: sats / 10, sats_per_plane: 10, ..ShellSpec::starlink_like() };
        let constellation = walker_delta(&spec, epoch());
        let store = EphemerisStore::build(&constellation, &grid, &cfg);
        g.bench_with_input(BenchmarkId::from_parameter(sats), &store, |b, store| {
            b.iter(|| std::hint::black_box(VisibilityTable::from_store(store, &sites, &cfg)))
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(5)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_store_build, bench_visibility_from_store
}
criterion_main!(benches);
