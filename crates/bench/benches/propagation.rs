//! Propagator micro-benchmarks: the per-step cost that bounds every
//! coverage experiment.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use orbital::constellation::single_plane;
use orbital::propagator::{KeplerJ2, Propagator, Sgp4};
use orbital::time::Epoch;

fn epoch() -> Epoch {
    Epoch::from_ymdhms(2024, 6, 1, 0, 0, 0.0)
}

fn bench_single_step(c: &mut Criterion) {
    let sat = &single_plane(1, 550.0, 53.0, epoch())[0];
    let kj2 = KeplerJ2::from_elements(&sat.elements, sat.epoch);
    let sgp4 = Sgp4::from_tle(&sat.to_tle()).unwrap();
    let t = epoch().plus_minutes(137.0);

    let mut g = c.benchmark_group("propagate_single");
    g.bench_function("kepler_j2", |b| b.iter(|| std::hint::black_box(kj2.propagate(t))));
    g.bench_function("sgp4", |b| b.iter(|| std::hint::black_box(sgp4.propagate(t))));
    g.finish();
}

fn bench_day_sweep(c: &mut Criterion) {
    // One satellite stepped across a full day at 60 s (1440 steps), the
    // simulator's inner loop shape.
    let sat = &single_plane(1, 550.0, 53.0, epoch())[0];
    let kj2 = KeplerJ2::from_elements(&sat.elements, sat.epoch);
    let mut g = c.benchmark_group("propagate_day_1440_steps");
    for step_s in [60.0f64, 120.0] {
        g.bench_with_input(BenchmarkId::from_parameter(step_s as u64), &step_s, |b, &step| {
            b.iter(|| {
                let mut acc = 0.0;
                let steps = (86_400.0 / step) as usize;
                for k in 0..steps {
                    let t = epoch().plus_seconds(k as f64 * step);
                    acc += kj2.propagate(t).position.x;
                }
                std::hint::black_box(acc)
            })
        });
    }
    g.finish();
}

fn bench_sgp4_init(c: &mut Criterion) {
    let sat = &single_plane(1, 550.0, 53.0, epoch())[0];
    let tle = sat.to_tle();
    c.bench_function("sgp4_init_from_tle", |b| {
        b.iter(|| std::hint::black_box(Sgp4::from_tle(&tle).unwrap()))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_secs(3)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_single_step, bench_day_sweep, bench_sgp4_init
}
criterion_main!(benches);
