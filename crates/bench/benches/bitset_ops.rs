//! Time-bitset micro-benchmarks: the algebra underlying every Monte-Carlo
//! run.

use criterion::{criterion_group, criterion_main, Criterion};
use leosim::TimeBitset;

const LEN: usize = 10_081; // one week at 60 s

fn patterned(period: usize, duty: usize) -> TimeBitset {
    let mut b = TimeBitset::zeros(LEN);
    for k in 0..LEN {
        if k % period < duty {
            b.set(k);
        }
    }
    b
}

fn bench_ops(c: &mut Criterion) {
    let a = patterned(97, 9);
    let b = patterned(61, 7);

    c.bench_function("bitset_union_assign_week", |bch| {
        bch.iter(|| {
            let mut x = a.clone();
            x.union_assign(&b);
            std::hint::black_box(x.count_ones())
        })
    });
    c.bench_function("bitset_marginal_gain_week", |bch| {
        bch.iter(|| std::hint::black_box(a.marginal_gain(&b)))
    });
    c.bench_function("bitset_count_ones_week", |bch| {
        bch.iter(|| std::hint::black_box(a.count_ones()))
    });
    c.bench_function("bitset_gap_extraction_week", |bch| {
        bch.iter(|| std::hint::black_box(a.runs_of_zeros().len()))
    });
    c.bench_function("bitset_union_of_1000", |bch| {
        let sets: Vec<TimeBitset> = (0..1000).map(|i| patterned(53 + i % 47, 5)).collect();
        bch.iter(|| std::hint::black_box(TimeBitset::union_of(sets.iter(), LEN).count_ones()))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_secs(3)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_ops
}
criterion_main!(benches);
