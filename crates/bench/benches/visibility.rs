//! Visibility-engine benchmarks: the do-once cost of materializing the
//! per-(satellite, site) tables every experiment shares.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use leosim::visibility::{SimConfig, VisibilityTable};
use leosim::TimeGrid;
use orbital::constellation::{walker_delta, ShellSpec};
use orbital::time::Epoch;

fn epoch() -> Epoch {
    Epoch::from_ymdhms(2024, 6, 1, 0, 0, 0.0)
}

fn bench_table(c: &mut Criterion) {
    let sites = geodata::to_sites(&geodata::paper_cities());
    let grid = TimeGrid::new(epoch(), 6.0 * 3600.0, 120.0);
    let mut g = c.benchmark_group("visibility_table_6h_21cities");
    for sats in [50u32, 200] {
        let spec =
            ShellSpec { planes: sats / 10, sats_per_plane: 10, ..ShellSpec::starlink_like() };
        let constellation = walker_delta(&spec, epoch());
        g.bench_with_input(BenchmarkId::from_parameter(sats), &constellation, |b, cons| {
            b.iter(|| {
                std::hint::black_box(VisibilityTable::compute(
                    cons,
                    &sites,
                    &grid,
                    &SimConfig::default(),
                ))
            })
        });
    }
    g.finish();
}

fn bench_coverage_union(c: &mut Criterion) {
    // The per-run cost of the Monte-Carlo experiments: unioning a subset.
    let spec = ShellSpec { planes: 20, sats_per_plane: 10, ..ShellSpec::starlink_like() };
    let constellation = walker_delta(&spec, epoch());
    let sites = geodata::to_sites(&geodata::paper_cities());
    let grid = TimeGrid::new(epoch(), 86_400.0, 120.0);
    let vt = VisibilityTable::compute(&constellation, &sites, &grid, &SimConfig::default());
    let subset: Vec<usize> = (0..100).collect();
    c.bench_function("coverage_union_100sats_21sites", |b| {
        b.iter(|| {
            let mut total = 0usize;
            for site in 0..vt.site_count() {
                total += vt.coverage_union(&subset, site).count_ones();
            }
            std::hint::black_box(total)
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(5)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_table, bench_coverage_union
}
criterion_main!(benches);
