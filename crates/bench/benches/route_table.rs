//! Routing step-kernel benchmarks: `RouteTable::build` (the grid-pruned
//! `traffic::pipeline::StepKernel`) swept over constellation size, horizon
//! length and worker threads, plus the head-to-head against the brute-force
//! `graph::step_routes_reference` loop it replaced.
//!
//! The kernel is bit-identical to the reference by construction (see
//! DESIGN.md "Routing step kernel"), so the comparison group is a pure
//! speed gate: the PR that introduced the kernel requires ≥ 2x at the
//! default constellation scale (300 satellites, 21 cities, stride-3
//! gateways).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use leosim::ephemeris::EphemerisStore;
use leosim::visibility::SimConfig;
use leosim::TimeGrid;
use orbital::constellation::{walker_delta, ShellSpec};
use orbital::ground::GroundSite;
use orbital::time::Epoch;
use traffic::graph::step_routes_reference;
use traffic::{gateways_every_nth, GraphConfig, RouteTable};

fn epoch() -> Epoch {
    Epoch::from_ymdhms(2024, 6, 1, 0, 0, 0.0)
}

/// A walker shell with `sats / 10` planes, plus the paper's 21 metro
/// terminals and every-3rd-city gateways — the same scene shape as the
/// `traffic` CLI command and the `traffic_diurnal` experiment.
fn scene(sats: u32, steps: usize) -> (EphemerisStore, Vec<GroundSite>, Vec<GroundSite>) {
    let spec = ShellSpec { planes: sats / 10, sats_per_plane: 10, ..ShellSpec::starlink_like() };
    let constellation = walker_delta(&spec, epoch());
    let grid = TimeGrid::new(epoch(), steps as f64 * 600.0, 600.0);
    let cfg = SimConfig::default();
    let store = EphemerisStore::build(&constellation, &grid, &cfg);
    let cities = geodata::paper_cities();
    let terminals: Vec<GroundSite> = cities.iter().map(|c| c.site()).collect();
    let gateways = gateways_every_nth(&cities, 3);
    (store, terminals, gateways)
}

fn bench_kernel_sweep(c: &mut Criterion) {
    let cfg = SimConfig::default();
    let graph = GraphConfig::default();
    let mut g = c.benchmark_group("route_table_build");
    for sats in [100u32, 300] {
        for steps in [18usize, 72] {
            for threads in [1usize, 4] {
                let (store, terminals, gateways) = scene(sats, steps);
                let id = format!("{sats}sats/{steps}steps/{threads}t");
                g.bench_with_input(BenchmarkId::from_parameter(id), &store, |b, store| {
                    b.iter(|| {
                        simrt::with_thread_cap(threads, || {
                            std::hint::black_box(RouteTable::build(
                                store, &terminals, &gateways, &cfg, &graph,
                            ))
                        })
                    })
                });
            }
        }
    }
    g.finish();
}

fn bench_kernel_vs_reference(c: &mut Criterion) {
    // The speedup gate: both sides single-threaded so the ratio isolates
    // the grid pruning + scratch reuse, not the fan-out.
    let cfg = SimConfig::default();
    let graph = GraphConfig::default();
    let (store, terminals, gateways) = scene(300, 18);
    let mut g = c.benchmark_group("route_table_default_scale");
    g.bench_function("kernel", |b| {
        b.iter(|| {
            simrt::with_thread_cap(1, || {
                std::hint::black_box(RouteTable::build(&store, &terminals, &gateways, &cfg, &graph))
            })
        })
    });
    g.bench_function("reference", |b| {
        b.iter(|| {
            for k in 0..store.steps() {
                std::hint::black_box(step_routes_reference(
                    &store, &terminals, &gateways, &cfg, &graph, k, None,
                ));
            }
        })
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(5)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_kernel_sweep, bench_kernel_vs_reference
}
criterion_main!(benches);
