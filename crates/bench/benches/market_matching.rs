//! Order-book matching throughput: how fast a replica absorbs a gossiped
//! order stream.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use dcp::crypto::KeyDirectory;
use dcp::market::{make_order, OrderBook};
use dcp::messages::MarketOrder;

fn order_stream(n: usize) -> Vec<MarketOrder> {
    let mut keys = KeyDirectory::new();
    keys.register_derived("p", b"bench");
    (0..n)
        .map(|i| {
            let is_bid = i % 2 == 0;
            // Deterministic pseudo-random walk of prices around 1.0.
            let price = 1.0 + ((i * 2654435761) % 100) as f64 / 1000.0 - 0.05;
            make_order(&keys, "p", is_bid, price, 1 + (i % 7) as u64, i as u64).unwrap()
        })
        .collect()
}

fn bench_matching(c: &mut Criterion) {
    let mut g = c.benchmark_group("orderbook_submit");
    for n in [100usize, 1000] {
        let stream = order_stream(n);
        g.throughput(Throughput::Elements(n as u64));
        g.bench_with_input(BenchmarkId::from_parameter(n), &stream, |b, stream| {
            b.iter(|| {
                let mut book = OrderBook::new();
                for o in stream {
                    book.submit(o.clone());
                }
                std::hint::black_box(book.trades().len())
            })
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_secs(3)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_matching
}
criterion_main!(benches);
