//! Monte-Carlo harness scaling: `run_experiment` throughput at 1/2/4/8
//! worker threads on the shared simrt pool. The interesting shape is the
//! speedup curve — the runs are embarrassingly parallel, so wall time
//! should fall close to linearly until the machine's core count.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use leosim::montecarlo::run_experiment;
use rand::rngs::StdRng;
use rand::Rng;

/// A CPU-bound stand-in for one experiment run: enough floating-point work
/// (~20k draws + sqrt) to dominate scheduling overhead.
fn mc_body(rng: &mut StdRng, _run: usize) -> f64 {
    let mut acc = 0.0;
    for _ in 0..20_000 {
        acc += rng.gen::<f64>().sqrt();
    }
    acc
}

fn bench_run_experiment(c: &mut Criterion) {
    let mut g = c.benchmark_group("montecarlo_run_experiment");
    for threads in [1usize, 2, 4, 8] {
        g.bench_with_input(BenchmarkId::from_parameter(threads), &threads, |b, &t| {
            b.iter(|| {
                // The thread cap bounds this scope (and, at cap 1, every
                // nested scope) without rebuilding the global pool.
                let agg = simrt::with_thread_cap(t, || run_experiment(7, 64, mc_body));
                std::hint::black_box(agg)
            })
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(5)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_run_experiment
}
criterion_main!(benches);
