//! Conjunction-screening and orbit-determination benchmarks: the heavier
//! analysis paths of the orbital substrate.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use orbital::conjunction::{screen_all_pairs, ScreeningConfig};
use orbital::constellation::{walker_delta, ShellSpec};
use orbital::ground::GroundSite;
use orbital::kepler::ClassicalElements;
use orbital::od::{fit_elements, synthesize_observations};
use orbital::time::Epoch;

fn epoch() -> Epoch {
    Epoch::from_ymdhms(2024, 6, 1, 0, 0, 0.0)
}

fn bench_screening(c: &mut Criterion) {
    let mut g = c.benchmark_group("conjunction_screen_6h");
    for sats in [36u32, 100] {
        let spec = ShellSpec { planes: sats / 6, sats_per_plane: 6, ..ShellSpec::starlink_like() };
        let els: Vec<ClassicalElements> =
            walker_delta(&spec, epoch()).iter().map(|s| s.elements).collect();
        g.bench_with_input(BenchmarkId::from_parameter(sats), &els, |b, els| {
            b.iter(|| {
                std::hint::black_box(screen_all_pairs(
                    els,
                    epoch(),
                    6.0 * 3600.0,
                    &ScreeningConfig::default(),
                ))
            })
        });
    }
    g.finish();
}

fn bench_od(c: &mut Criterion) {
    let truth = ClassicalElements::circular(550.0, 53f64.to_radians(), 2.0, 0.5);
    let site = GroundSite::from_degrees("gs", 25.0, 121.5);
    let obs = synthesize_observations(&truth, epoch(), &site, 43_200.0, 60.0, 10.0, 0.1, 9);
    let initial =
        ClassicalElements { semi_major_axis_km: truth.semi_major_axis_km + 15.0, ..truth };
    c.bench_function("od_fit_halfday_ranges", |b| {
        b.iter(|| std::hint::black_box(fit_elements(&initial, epoch(), &site, &obs).unwrap()))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(5)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_screening, bench_od
}
criterion_main!(benches);
