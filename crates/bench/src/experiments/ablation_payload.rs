//! Ablation: transparent repeater vs regenerative payload.
//!
//! The paper chooses a transparent bent pipe (§3.1) and flags the cost in
//! §4: packet-level (regenerative) designs "avoid any amplification of
//! noise from ground transmissions". This study runs the link budget for
//! both architectures across the elevation range a pass sweeps, showing
//! the throughput the transparency simplification gives up.

use crate::expectations::{Comparator, Expectation};
use crate::experiment::{Experiment, ExperimentResult};
use crate::experiments::expect;
use crate::{Context, Fidelity};
use leosim::linkbudget::{
    end_to_end_capacity_bps, end_to_end_cn, slant_range_km, PayloadArchitecture, RfLeg,
};

/// See module docs.
pub struct AblationPayload;

impl Experiment for AblationPayload {
    fn id(&self) -> &'static str {
        "ablation_payload"
    }

    fn title(&self) -> &'static str {
        "transparent vs regenerative payload (Ku band, 550 km)"
    }

    fn params(&self, _fidelity: &Fidelity) -> Vec<(String, String)> {
        vec![
            ("band".into(), "Ku".into()),
            ("altitude_km".into(), "550".into()),
            ("elevations_deg".into(), "[10, 25, 40, 60, 90]".into()),
        ]
    }

    fn expectations(&self) -> Vec<Expectation> {
        vec![
            expect(
                "gateway_loss_pct_max",
                Comparator::Le,
                1.0,
                1.0,
                "§4: on gateway links the downlink budget dominates — transparency is ~free",
                true,
            ),
            expect(
                "balanced_loss_pct_el40",
                Comparator::Ge,
                5.0,
                4.0,
                "§4: balanced terminal-to-terminal legs pay the full ~3 dB noise stack",
                true,
            ),
        ]
    }

    fn run(&self, _ctx: &Context, _fidelity: &Fidelity) -> ExperimentResult {
        let up = RfLeg::ku_user_uplink();
        let down = RfLeg::ku_gateway_downlink();

        let mut rows = Vec::new();
        let mut gateway_loss_max = 0.0f64;
        for el_deg in [10.0f64, 25.0, 40.0, 60.0, 90.0] {
            let r = slant_range_km(550.0, el_deg.to_radians());
            let cn_t = end_to_end_cn(PayloadArchitecture::Transparent, &up, r, &down, r);
            let cn_r = end_to_end_cn(PayloadArchitecture::Regenerative, &up, r, &down, r);
            let cap_t = end_to_end_capacity_bps(PayloadArchitecture::Transparent, &up, r, &down, r);
            let cap_r =
                end_to_end_capacity_bps(PayloadArchitecture::Regenerative, &up, r, &down, r);
            let loss_pct = 100.0 * (cap_r - cap_t) / cap_r;
            gateway_loss_max = gateway_loss_max.max(loss_pct);
            rows.push(vec![
                format!("{el_deg:.0}"),
                format!("{r:.0}"),
                format!("{:.1}", 10.0 * cn_t.log10()),
                format!("{:.1}", 10.0 * cn_r.log10()),
                format!("{:.0}", cap_t / 1e6),
                format!("{:.0}", cap_r / 1e6),
                format!("{loss_pct:.1}"),
            ]);
        }

        // Second scenario: terminal-to-terminal relay (no gateway). Both
        // legs end at small user antennas, so the budgets are balanced and
        // the transparent noise-stacking shows its full 3 dB.
        let down_user = RfLeg { g_over_t_db_k: 8.0, ..down };
        let mut rows2 = Vec::new();
        let mut balanced_loss_el40 = f64::NAN;
        for el_deg in [10.0f64, 40.0, 90.0] {
            let r = slant_range_km(550.0, el_deg.to_radians());
            let cn_t = end_to_end_cn(PayloadArchitecture::Transparent, &up, r, &down_user, r);
            let cn_r = end_to_end_cn(PayloadArchitecture::Regenerative, &up, r, &down_user, r);
            let cap_t =
                end_to_end_capacity_bps(PayloadArchitecture::Transparent, &up, r, &down_user, r);
            let cap_r =
                end_to_end_capacity_bps(PayloadArchitecture::Regenerative, &up, r, &down_user, r);
            let loss_pct = 100.0 * (cap_r - cap_t) / cap_r;
            if (el_deg - 40.0).abs() < 1e-9 {
                balanced_loss_el40 = loss_pct;
            }
            rows2.push(vec![
                format!("{el_deg:.0}"),
                format!("{:.1}", 10.0 * cn_t.log10()),
                format!("{:.1}", 10.0 * cn_r.log10()),
                format!("{:.0}", cap_t / 1e6),
                format!("{:.0}", cap_r / 1e6),
                format!("{loss_pct:.1}"),
            ]);
        }
        ExperimentResult::data()
            .scalar("gateway_loss_pct_max", gateway_loss_max)
            .scalar("balanced_loss_pct_el40", balanced_loss_el40)
            .table(
                "gateway_links",
                &[
                    "elevation (deg)",
                    "slant range (km)",
                    "C/N transp (dB)",
                    "C/N regen (dB)",
                    "rate transp (Mbps)",
                    "rate regen (Mbps)",
                    "throughput given up %",
                ],
                rows,
            )
            .table(
                "terminal_to_terminal",
                &[
                    "elevation (deg)",
                    "C/N transp (dB)",
                    "C/N regen (dB)",
                    "rate transp (Mbps)",
                    "rate regen (Mbps)",
                    "throughput given up %",
                ],
                rows2,
            )
            .note("takeaway: transparency costs ~3 dB of C/N when the legs are")
            .note("balanced, a modest single-digit-percent throughput loss at these")
            .note("budgets — cheap relative to what it buys the paper's design:")
            .note("protocol freedom, end-to-end encryption, and dumb, long-lived")
            .note("satellites that any party can use without interoperability work.")
    }
}
