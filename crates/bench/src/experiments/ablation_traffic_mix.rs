//! Ablation: demand-scale sweep over the traffic engine.
//!
//! How does the shared constellation degrade as offered load grows past
//! what it can carry? The routing pass (the expensive part) is computed
//! once; the demand matrix is then scaled ×0.5 … ×4 and re-allocated. The
//! invariants under test: total served traffic is monotone non-decreasing
//! in offered load (max-min fairness never throws capacity away), while
//! the served *ratio* is monotone non-increasing (congestion only hurts).

use crate::expectations::{Comparator, Expectation};
use crate::experiment::{Experiment, ExperimentResult};
use crate::experiments::expect;
use crate::{seeds, Context, Fidelity};
use leosim::montecarlo::{run_rng, sample_indices};
use mpleo::party::PartyId;
use traffic::{
    gateways_every_nth, run_traffic_with_routes, DemandMatrix, RouteTable, TrafficConfig,
};

/// See module docs.
pub struct AblationTrafficMix;

/// The swept demand multipliers.
pub const SCALES: [f64; 4] = [0.5, 1.0, 2.0, 4.0];

fn sample_size(fidelity: &Fidelity) -> usize {
    if fidelity.full {
        500
    } else {
        200
    }
}

impl Experiment for AblationTrafficMix {
    fn id(&self) -> &'static str {
        "ablation_traffic_mix"
    }

    fn title(&self) -> &'static str {
        "served traffic vs offered demand scale"
    }

    fn seeds(&self) -> Vec<u64> {
        vec![seeds::ABLATION_TRAFFIC_MIX]
    }

    fn params(&self, fidelity: &Fidelity) -> Vec<(String, String)> {
        vec![
            ("sample".into(), sample_size(fidelity).to_string()),
            ("scales".into(), SCALES.map(|s| format!("{s}")).join(",")),
            ("gateway_stride".into(), "3".into()),
        ]
    }

    fn expectations(&self) -> Vec<Expectation> {
        vec![
            expect(
                "served_monotone",
                Comparator::Within,
                1.0,
                0.0,
                "fairness sanity: more offered load never reduces served load",
                true,
            ),
            expect(
                "ratio_monotone",
                Comparator::Within,
                1.0,
                0.0,
                "congestion sanity: the served ratio never improves with load",
                true,
            ),
        ]
    }

    fn run(&self, ctx: &Context, fidelity: &Fidelity) -> ExperimentResult {
        let sample = sample_size(fidelity);
        let mut rng = run_rng(seeds::ABLATION_TRAFFIC_MIX, 0);
        let idx = sample_indices(&mut rng, ctx.pool.len(), sample);
        let store = ctx.subset_ephemeris(&idx);

        let parties = vec![PartyId::new("pool")];
        let sat_party = vec![0usize; store.sat_count()];
        let city_party = vec![0usize; ctx.cities.len()];
        let gateways = gateways_every_nth(&ctx.cities, 3);
        let sites: Vec<_> = ctx.cities.iter().map(|c| c.site()).collect();

        let mut cfg = TrafficConfig::default();
        cfg.demand.seed = seeds::ABLATION_TRAFFIC_MIX;

        // One routing pass serves every scale point.
        let base = DemandMatrix::generate(&ctx.cities, &store.grid, &cfg.demand);
        let routes = RouteTable::build(&store, &sites, &gateways, &ctx.config, &cfg.graph);

        let mut rows = Vec::new();
        let mut served_means = Vec::new();
        let mut ratios_pct = Vec::new();
        for scale in SCALES {
            let mut demand = base.clone();
            for v in &mut demand.offered_mbps {
                *v *= scale;
            }
            let point_cfg = TrafficConfig { demand_scale: scale, ..cfg.clone() };
            let report = run_traffic_with_routes(
                &demand,
                &routes,
                &point_cfg,
                &sat_party,
                &city_party,
                &parties,
            );
            let served_mean =
                report.total_served_steps.iter().sum::<f64>() / report.steps.max(1) as f64;
            let ratio_pct = report.served_ratio() * 100.0;
            rows.push(vec![
                format!("x{scale}"),
                format!(
                    "{:.0}",
                    report.total_offered_steps.iter().sum::<f64>() / report.steps.max(1) as f64
                ),
                format!("{served_mean:.0}"),
                format!("{ratio_pct:.1}"),
                format!("{:.1}", report.drop_pct()),
            ]);
            served_means.push(served_mean);
            ratios_pct.push(ratio_pct);
        }

        let served_monotone = served_means.windows(2).all(|w| w[1] >= w[0] - 1e-6) as u8 as f64;
        let ratio_monotone = ratios_pct.windows(2).all(|w| w[1] <= w[0] + 1e-6) as u8 as f64;

        ExperimentResult::data()
            .scalar("served_monotone", served_monotone)
            .scalar("ratio_monotone", ratio_monotone)
            .scalar("served_ratio_x1_pct", ratios_pct[1])
            .scalar("served_ratio_x4_pct", ratios_pct[3])
            .scalar(
                "served_gain_x4_over_x1",
                if served_means[1] > 0.0 { served_means[3] / served_means[1] } else { 0.0 },
            )
            .series("scales", SCALES.to_vec())
            .series("served_mean_mbps", served_means)
            .series("served_ratio_pct", ratios_pct)
            .table("sweep", &["scale", "offered Mbps", "served Mbps", "served %", "drop %"], rows)
            .note("takeaway: served traffic saturates rather than collapses as load")
            .note("grows — max-min fairness fills every bottleneck before dropping —")
            .note("while the served ratio falls, which is exactly the deficit signal")
            .note("the capacity market monetizes.")
    }
}
