//! Ablation: LEO bent-pipe latency vs the geostationary alternative.
//!
//! The paper's §2 dismisses GEO because its altitude means "orders of
//! magnitude degradation in network latency (second-level)". This study
//! measures the actual bent-pipe delay distribution through the MP-LEO
//! constellation and compares it with the closed-form GEO path.

use crate::expectations::{Comparator, Expectation};
use crate::experiment::{Experiment, ExperimentResult};
use crate::experiments::expect;
use crate::{seeds, Context, Fidelity};
use leosim::latency::{bentpipe_latency_from_store, geo_latency_ms};
use leosim::montecarlo::{run_rng, sample_indices};
use orbital::ground::GroundSite;

/// See module docs.
pub struct AblationLatency;

fn sample_size(fidelity: &Fidelity) -> usize {
    if fidelity.full {
        600
    } else {
        200
    }
}

fn fmt(v: Option<f64>) -> String {
    v.map(|x| format!("{x:.1}")).unwrap_or_else(|| "-".into())
}

impl Experiment for AblationLatency {
    fn id(&self) -> &'static str {
        "ablation_latency"
    }

    fn title(&self) -> &'static str {
        "LEO bent-pipe latency vs GEO (one-way)"
    }

    fn seeds(&self) -> Vec<u64> {
        vec![seeds::ABLATION_LATENCY]
    }

    fn params(&self, fidelity: &Fidelity) -> Vec<(String, String)> {
        vec![
            ("terminal".into(), "Taipei".into()),
            ("ground_station".into(), "Kaohsiung".into()),
            ("sample".into(), sample_size(fidelity).to_string()),
        ]
    }

    fn expectations(&self) -> Vec<Expectation> {
        vec![
            expect(
                "leo_mean_ms",
                Comparator::Le,
                15.0,
                10.0,
                "§2: LEO one-way bent-pipe delay is milliseconds-scale",
                true,
            ),
            expect(
                "geo_over_leo_ratio",
                Comparator::Ge,
                10.0,
                5.0,
                "§2: GEO means orders-of-magnitude latency degradation",
                true,
            ),
        ]
    }

    fn run(&self, ctx: &Context, fidelity: &Fidelity) -> ExperimentResult {
        let sample = sample_size(fidelity);
        let mut rng = run_rng(seeds::ABLATION_LATENCY, 0);
        let idx = sample_indices(&mut rng, ctx.pool.len(), sample);
        let store = ctx.subset_ephemeris(&idx);

        let terminal = GroundSite::from_degrees("Taipei", 25.03, 121.56);
        let gs = GroundSite::from_degrees("Kaohsiung-GS", 22.63, 120.30);
        let series = bentpipe_latency_from_store(&store, &terminal, &gs, &ctx.config);

        let mut rows = Vec::new();
        rows.push(vec![
            format!("LEO bent pipe ({sample} sats)"),
            fmt(series.mean_ms()),
            fmt(series.percentile_ms(0.5)),
            fmt(series.percentile_ms(0.99)),
            format!("{:.1}", series.availability() * 100.0),
        ]);
        // GEO: terminal and GS are ~a few hundred km from the sub-satellite
        // point in the best case; also show a poorly placed case.
        let geo_best = geo_latency_ms(500.0, 500.0);
        let geo_worst = geo_latency_ms(6000.0, 6000.0);
        rows.push(vec![
            "GEO bent pipe (best slot)".into(),
            format!("{geo_best:.1}"),
            format!("{geo_best:.1}"),
            format!("{geo_best:.1}"),
            "100.0".into(),
        ]);
        rows.push(vec![
            "GEO bent pipe (edge of footprint)".into(),
            format!("{geo_worst:.1}"),
            format!("{geo_worst:.1}"),
            format!("{geo_worst:.1}"),
            "100.0".into(),
        ]);
        let leo_mean = series.mean_ms().unwrap_or(f64::NAN);
        ExperimentResult::data()
            .scalar("leo_mean_ms", leo_mean)
            .scalar("leo_p99_ms", series.percentile_ms(0.99).unwrap_or(f64::NAN))
            .scalar("leo_availability_pct", series.availability() * 100.0)
            .scalar("geo_best_ms", geo_best)
            .scalar("geo_over_leo_ratio", geo_best / leo_mean)
            .table(
                "latency",
                &["path", "mean (ms)", "p50 (ms)", "p99 (ms)", "availability %"],
                rows,
            )
            .note(format!(
                "LEO one-way delay is ~{:.0} ms vs GEO's ~{:.0} ms — {}x; a",
                leo_mean,
                geo_best,
                (geo_best / leo_mean).round()
            ))
            .note("request/response over GEO costs ~0.5 s, the paper's 'second-level'.")
    }
}
