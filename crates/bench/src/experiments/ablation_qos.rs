//! Ablation: which SLA tiers can a constellation of a given size sell?
//!
//! Ties the paper's Fig. 2 coverage curve to its §4 market-design question
//! ("What kinds of quality-of-service can they provide?"): for each
//! constellation size, classify the Taipei coverage into service tiers and
//! report the handover load a subscriber would see.

use crate::expectations::{Comparator, Expectation};
use crate::experiment::{Experiment, ExperimentResult};
use crate::experiments::expect;
use crate::{fmt_dur, seeds, Context, Fidelity};
use leosim::coverage::CoverageStats;
use leosim::montecarlo::{run_rng, sample_indices};
use mpleo::handover::{simulate_handover, HandoverPolicy};
use mpleo::sla::quote;

/// Constellation sizes swept.
pub const SIZES: [usize; 5] = [25, 100, 300, 700, 1500];

/// See module docs.
pub struct AblationQos;

impl Experiment for AblationQos {
    fn id(&self) -> &'static str {
        "ablation_qos"
    }

    fn title(&self) -> &'static str {
        "sellable SLA tier vs constellation size (Taipei)"
    }

    fn seeds(&self) -> Vec<u64> {
        vec![seeds::ABLATION_QOS]
    }

    fn params(&self, _fidelity: &Fidelity) -> Vec<(String, String)> {
        vec![
            ("sizes".into(), format!("{SIZES:?}")),
            ("handover_policy".into(), "sticky max-dwell".into()),
        ]
    }

    fn expectations(&self) -> Vec<Expectation> {
        vec![
            expect(
                "availability_monotone",
                Comparator::Ge,
                1.0,
                0.0,
                "§4 ablation: availability (and sellable tier) grows with size",
                true,
            ),
            expect(
                "availability_pct_1500",
                Comparator::Ge,
                99.0,
                1.0,
                "§2/§4: interactive tiers unlock above ~1000 satellites",
                false,
            ),
        ]
    }

    fn run(&self, ctx: &Context, _fidelity: &Fidelity) -> ExperimentResult {
        let taipei = [geodata::taipei()];
        let vt = ctx.table_for(&taipei);

        let mut rows = Vec::new();
        let mut availability = Vec::new();
        let mut result = ExperimentResult::data();
        for &size in &SIZES {
            let mut rng = run_rng(seeds::ABLATION_QOS, size as u64);
            let subset = sample_indices(&mut rng, vt.sat_count(), size);
            let covered = vt.coverage_union(&subset, 0);
            let stats = CoverageStats::from_bitset(&covered, &vt.grid);
            let q = quote(&stats);
            availability.push(q.availability * 100.0);
            let trace = simulate_handover(&vt, 0, &subset, HandoverPolicy::StickyMaxDwell);
            rows.push(vec![
                size.to_string(),
                format!("{:.3}", q.availability * 100.0),
                fmt_dur(q.worst_outage_s),
                q.tier.name.to_string(),
                format!("{:.1}x", q.tier.price_multiplier),
                format!("{:.1}", trace.handover_rate_per_hour(ctx.grid.step_s)),
            ]);
        }
        let monotone = availability.windows(2).all(|w| w[1] >= w[0]);
        result = result
            .scalar("availability_monotone", if monotone { 1.0 } else { 0.0 })
            .scalar("availability_pct_1500", *availability.last().unwrap())
            .series("sizes", SIZES.iter().map(|&s| s as f64).collect())
            .series("availability_pct", availability);
        result
            .table(
                "sla_tiers",
                &[
                    "satellites",
                    "availability %",
                    "worst outage",
                    "sellable tier",
                    "price",
                    "handovers /connected h",
                ],
                rows,
            )
            .note("takeaway: the tier ladder quantizes Fig. 2's smooth coverage curve")
            .note("into the products a participant can actually sell — sparse")
            .note("constellations monetize as delay-tolerant service (the §4")
            .note("bootstrapping path) long before interactive tiers unlock.")
    }
}
