//! Figure 4c: impact of varying inclination, altitude, and phase.
//!
//! Paper protocol: base of four Starlink-like satellites (53 deg, 546 km,
//! 90 deg apart in one plane); add one satellite from each of three
//! categories: (1) different inclination (43 deg), (2) same plane/phase
//! but different altitude, (3) same plane but different phase. Headline:
//! different inclination wins (~+1 h 11 m over a week); the other two
//! still gain over 30 minutes.

use crate::expectations::{Comparator, Expectation};
use crate::experiment::{Experiment, ExperimentResult};
use crate::experiments::{expect, week_scale};
use crate::{fmt_dur, scenario_epoch, Context, Fidelity};
use mpleo::placement::{category_study, Category};

/// See module docs.
pub struct Fig4c;

impl Experiment for Fig4c {
    fn id(&self) -> &'static str {
        "fig4c"
    }

    fn title(&self) -> &'static str {
        "coverage gain by candidate category (4-satellite base)"
    }

    fn params(&self, _fidelity: &Fidelity) -> Vec<(String, String)> {
        vec![
            ("base".into(), "4 sats, one plane, 53 deg, 546 km".into()),
            ("categories".into(), "inclination 43 deg | altitude | phase".into()),
        ]
    }

    fn expectations(&self) -> Vec<Expectation> {
        vec![
            // The inclination/altitude advantages need the week-long
            // differential drift, so these are warn-only at quick fidelity
            // (a faithful reproduction of why the paper simulates a week).
            expect(
                "inclination_minus_phase_min",
                Comparator::Ge,
                0.0,
                10.0,
                "§3.3 Fig 4c: different inclination gains the most (~1 h 11 m)",
                false,
            ),
            expect(
                "min_gain_min_per_week",
                Comparator::Ge,
                30.0,
                15.0,
                "§3.3 Fig 4c: every category gains over 30 minutes per week",
                false,
            ),
        ]
    }

    fn run(&self, ctx: &Context, _fidelity: &Fidelity) -> ExperimentResult {
        let results =
            category_study(&ctx.sites, &ctx.weights, &ctx.grid, &ctx.config, scenario_epoch());
        let scale = week_scale(ctx.grid.duration_s());

        let mut rows = Vec::new();
        let mut result = ExperimentResult::data();
        let mut gains_min = Vec::new();
        for r in &results {
            let gain_min = r.gain_s * scale / 60.0;
            gains_min.push(gain_min);
            let key = match r.category {
                Category::DifferentInclination => "gain_min_inclination",
                Category::DifferentAltitude => "gain_min_altitude",
                Category::DifferentPhase => "gain_min_phase",
            };
            result = result.scalar(key, gain_min);
            rows.push(vec![
                r.category.label().to_string(),
                fmt_dur(r.gain_s * scale),
                format!("{gain_min:.1}"),
            ]);
        }
        let gain = |c: Category| {
            results
                .iter()
                .find(|r| r.category == c)
                .map(|r| r.gain_s * scale / 60.0)
                .unwrap_or(f64::NAN)
        };
        result
            .scalar(
                "inclination_minus_phase_min",
                gain(Category::DifferentInclination) - gain(Category::DifferentPhase),
            )
            .scalar(
                "min_gain_min_per_week",
                gains_min.iter().cloned().fold(f64::INFINITY, f64::min),
            )
            .series("gain_min_per_week", gains_min)
            .table("category_study", &["category", "gain /wk", "gain (min)"], rows)
            .note("paper shape: different inclination highest (~1 h 11 m);")
            .note("             different altitude and phase both gain > 30 min.")
    }
}
