//! Ablation: coverage gain per unit of propellant — the economics beneath
//! Fig. 4c.
//!
//! Fig. 4c says inclination diversity buys the most coverage; this study
//! adds what each option *costs* to reach from a shared launch (delta-v
//! and propellant fraction), turning the coverage ranking into a
//! value-per-cost ranking a profit-seeking participant would actually use.

use crate::expectations::{Comparator, Expectation};
use crate::experiment::{Experiment, ExperimentResult};
use crate::experiments::{expect, week_scale};
use crate::{fmt_dur, scenario_epoch, Context, Fidelity};
use mpleo::placement::{category_study, Category};
use orbital::maneuver::{hohmann, phasing, plane_change};

/// Electric-propulsion specific impulse used for propellant fractions.
pub const ISP_S: f64 = 1500.0;

/// See module docs.
pub struct AblationManeuver;

impl Experiment for AblationManeuver {
    fn id(&self) -> &'static str {
        "ablation_maneuver"
    }

    fn title(&self) -> &'static str {
        "coverage per delta-v across placement categories"
    }

    fn params(&self, _fidelity: &Fidelity) -> Vec<(String, String)> {
        vec![
            ("base_orbit".into(), "53 deg, 546 km, phase 0".into()),
            ("isp_s".into(), format!("{ISP_S:.0}")),
        ]
    }

    fn expectations(&self) -> Vec<Expectation> {
        vec![
            expect(
                "dv_inclination_ms",
                Comparator::Ge,
                500.0,
                100.0,
                "orbital mechanics: a 10° plane change at LEO costs order-km/s",
                true,
            ),
            expect(
                "phase_over_inclination_value",
                Comparator::Ge,
                10.0,
                5.0,
                "Fig 4c economics: phase separation wins value-per-m/s by orders of magnitude",
                false,
            ),
        ]
    }

    fn run(&self, ctx: &Context, _fidelity: &Fidelity) -> ExperimentResult {
        let results =
            category_study(&ctx.sites, &ctx.weights, &ctx.grid, &ctx.config, scenario_epoch());
        let scale = week_scale(ctx.grid.duration_s());

        // Costs to reach each slot from the base's orbit (53 deg, 546 km,
        // phase 0) after rideshare deployment there.
        let costs = [
            plane_change(546.0, 10f64.to_radians()), // 53 -> 43 deg
            hohmann(546.0, 600.0),                   // +54 km
            phasing(546.0, 45f64.to_radians(), 30),  // 45 deg slot shift
        ];

        let mut rows = Vec::new();
        let mut result = ExperimentResult::data();
        let mut value_by_category = [f64::NAN; 3];
        for (i, (r, cost)) in results.iter().zip(costs.iter()).enumerate() {
            let gain_min = r.gain_s * scale / 60.0;
            let dv_ms = cost.delta_v_km_s * 1000.0;
            let value = if dv_ms > 1e-3 { gain_min / dv_ms } else { f64::INFINITY };
            value_by_category[i] = value;
            if r.category == Category::DifferentInclination {
                result = result.scalar("dv_inclination_ms", dv_ms);
            }
            rows.push(vec![
                r.category.label().to_string(),
                format!("{gain_min:.0}"),
                format!("{dv_ms:.0}"),
                format!("{:.1}", cost.propellant_fraction(ISP_S) * 100.0),
                fmt_dur(cost.duration_s),
                format!("{value:.3}"),
            ]);
        }
        // category_study returns [inclination, altitude, phase] in order.
        let ratio = if value_by_category[0] > 0.0 {
            value_by_category[2] / value_by_category[0]
        } else {
            f64::INFINITY
        };
        result
            .scalar("value_inclination_min_per_ms", value_by_category[0])
            .scalar("value_altitude_min_per_ms", value_by_category[1])
            .scalar("value_phase_min_per_ms", value_by_category[2])
            .scalar("phase_over_inclination_value", ratio)
            .table(
                "value_per_delta_v",
                &[
                    "category",
                    "gain (min/wk)",
                    "delta-v (m/s)",
                    "propellant % (isp 1500)",
                    "maneuver time",
                    "min gained per m/s",
                ],
                rows,
            )
            .note("takeaway: inclination wins Fig. 4c's coverage race but loses the")
            .note("value race by orders of magnitude — which is why real participants")
            .note("buy inclination diversity at *launch* (a different rideshare), and")
            .note("use on-orbit propellant only for phase/altitude separation.")
    }
}
