//! Figure 1a: the ground track of one LEO satellite across three hours.
//!
//! The paper's figure shows the sub-satellite point drifting to a different
//! path on every orbit (color red -> blue with time). The experiment
//! records the lat/lon series and summarizes the westward drift per orbit.

use crate::expectations::{Comparator, Expectation};
use crate::experiment::{Experiment, ExperimentResult};
use crate::experiments::expect;
use crate::{scenario_epoch, Context, Fidelity};
use leosim::ephemeris::EphemerisStore;
use leosim::visibility::SimConfig;
use leosim::TimeGrid;
use orbital::constellation::single_plane;
use orbital::frames::ecef_to_geodetic;

/// See module docs.
pub struct Fig1a;

impl Experiment for Fig1a {
    fn id(&self) -> &'static str {
        "fig1a"
    }

    fn title(&self) -> &'static str {
        "orbital motion of a LEO satellite across three hours"
    }

    fn params(&self, _fidelity: &Fidelity) -> Vec<(String, String)> {
        vec![
            ("altitude_km".into(), "550".into()),
            ("inclination_deg".into(), "53".into()),
            ("step_s".into(), "30".into()),
            ("track_horizon_s".into(), format!("{}", 3 * 3600)),
        ]
    }

    fn expectations(&self) -> Vec<Expectation> {
        vec![
            expect("period_min", Comparator::Within, 95.7, 3.0, "§1: period ~1.5 h", true),
            expect(
                "mean_drift_deg_per_orbit",
                Comparator::Within,
                -24.4,
                2.0,
                "Fig 1a: a different path each orbit (~-24° westward shift)",
                true,
            ),
        ]
    }

    fn run(&self, _ctx: &Context, _fidelity: &Fidelity) -> ExperimentResult {
        let epoch = scenario_epoch();
        let sats = single_plane(1, 550.0, 53.0, epoch);
        let period_s = sats[0].elements.period_s();

        let mut rows = Vec::new();
        let mut equator_crossings: Vec<(f64, f64)> = Vec::new(); // (t, lon)
        let mut last: Option<(f64, f64)> = None; // (lat, lon at previous step)
        let mut lat_series = Vec::new();
        let mut lon_series = Vec::new();
        let step_s = 30.0;
        let horizon_s = 3.0 * 3600.0;
        // Track the crossings over a longer window (4 orbits) so the
        // per-orbit drift table has several rows even though the figure's
        // track spans 3 hours.
        let crossing_horizon_s = 4.2 * period_s;
        let grid = TimeGrid::new(epoch, crossing_horizon_s, step_s);
        // The store already holds ECEF positions, so the sub-satellite
        // point is a direct geodetic conversion — no per-step propagation.
        let store = EphemerisStore::build(&sats, &grid, &SimConfig::default());
        for k in 0..grid.steps {
            let t = k as f64 * step_s;
            let g = ecef_to_geodetic(store.position(0, k));
            let (lat, lon) = (g.latitude_deg(), g.longitude_deg());
            if t <= horizon_s {
                lat_series.push(lat);
                lon_series.push(lon);
                if (t as u64).is_multiple_of(600) {
                    rows.push(vec![
                        format!("{:.0}", t / 60.0),
                        format!("{lat:.2}"),
                        format!("{lon:.2}"),
                    ]);
                }
            }
            if let Some((prev_lat, _)) = last {
                if prev_lat < 0.0 && lat >= 0.0 && t > step_s {
                    let prev_lon = last.unwrap().1;
                    equator_crossings.push((t, (prev_lon + lon) / 2.0));
                }
            }
            last = Some((lat, lon));
        }

        let mut drift_rows = Vec::new();
        let mut drifts = Vec::new();
        for pair in equator_crossings.windows(2) {
            let dl = orbital::math::wrap_pi((pair[1].1 - pair[0].1).to_radians()).to_degrees();
            drifts.push(dl);
            drift_rows.push(vec![
                format!("{:.1}", pair[0].0 / 60.0),
                format!("{:.2}", pair[0].1),
                format!("{dl:.2}"),
            ]);
        }
        let mean_drift = if drifts.is_empty() {
            f64::NAN
        } else {
            drifts.iter().sum::<f64>() / drifts.len() as f64
        };

        ExperimentResult::data()
            .scalar("period_min", period_s / 60.0)
            .scalar("mean_drift_deg_per_orbit", mean_drift)
            .series("track_lat_deg", lat_series)
            .series("track_lon_deg", lon_series)
            .series("drift_deg_per_orbit", drifts)
            .table("ground_track", &["t (min)", "lat (deg)", "lon (deg)"], rows)
            .table(
                "equator_crossings",
                &["t (min)", "crossing lon (deg)", "drift to next (deg)"],
                drift_rows,
            )
            .note("shape check: each orbit's track shifts ~-24 deg west; the satellite")
            .note("covers a different path each revolution, so no single region keeps it.")
    }
}
