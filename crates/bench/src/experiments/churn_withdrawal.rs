//! Churn campaign: mid-run failures and a party withdrawal, then a heal.
//!
//! The paper's resilience claim (§3.3) is about what happens *while* the
//! constellation is carrying traffic, not in before/after snapshots. This
//! experiment drives `traffic::churn` end to end over the shared scenario:
//! a tenth of the sampled satellites hard-fail a quarter of the way in,
//! one party withdraws (satellites and sponsored demand both leave, with a
//! signed `dcp` withdrawal notice), the failures heal, and the party
//! rejoins. The headline checks: service returns to the undisturbed
//! baseline once the last event lands, and the capacity market — run over
//! the shrinking membership with the withdrawn party censored from every
//! epoch its absence touches — still clears zero-sum.

use crate::expectations::{Comparator, Expectation};
use crate::experiment::{Experiment, ExperimentResult};
use crate::experiments::expect;
use crate::{seeds, Context, Fidelity};
use leosim::montecarlo::{run_rng, sample_indices};
use mpleo::party::PartyId;
use traffic::{
    gateways_every_nth, run_campaign, CampaignConfig, ChurnEvent, ChurnSchedule, TrafficConfig,
};

/// See module docs.
pub struct ChurnWithdrawal;

/// The experiment's party set (shared with `traffic_diurnal`).
pub const PARTIES: [&str; 3] = ["alpha", "beta", "gamma"];

/// Gateway placement stride over the 21 paper cities.
pub const GATEWAY_STRIDE: usize = 3;

/// Fraction of the sampled constellation that hard-fails mid-campaign.
pub const FAIL_FRACTION: f64 = 0.1;

/// Index (into [`PARTIES`]) of the party that withdraws and rejoins.
pub const WITHDRAWING_PARTY: usize = 1;

/// Market epoch length, seconds (same cadence as `traffic_diurnal`).
pub const EPOCH_S: f64 = 6.0 * 3600.0;

fn sample_size(fidelity: &Fidelity) -> usize {
    if fidelity.full {
        600
    } else {
        250
    }
}

/// The campaign's timeline over a horizon of `steps` grid steps: failures
/// at 25%, withdrawal at 40%, failure heal at 60%, rejoin at 75%. The
/// failure set is drawn by [`traffic::sample_failures`] from
/// [`seeds::CHURN_WITHDRAWAL`], so the schedule is a pure function of the
/// scenario dimensions.
pub fn schedule(steps: usize, n_sats: usize) -> ChurnSchedule {
    ChurnSchedule::new()
        .fail_random_sats(
            seeds::CHURN_WITHDRAWAL,
            n_sats,
            FAIL_FRACTION,
            steps / 4,
            Some(3 * steps / 5),
        )
        .at(2 * steps / 5, ChurnEvent::PartyWithdraw { party: WITHDRAWING_PARTY })
        .at(3 * steps / 4, ChurnEvent::PartyRejoin { party: WITHDRAWING_PARTY })
}

impl Experiment for ChurnWithdrawal {
    fn id(&self) -> &'static str {
        "churn_withdrawal"
    }

    fn title(&self) -> &'static str {
        "mid-run failures and party withdrawal, then a heal"
    }

    fn seeds(&self) -> Vec<u64> {
        vec![seeds::CHURN_WITHDRAWAL]
    }

    fn params(&self, fidelity: &Fidelity) -> Vec<(String, String)> {
        vec![
            ("sample".into(), sample_size(fidelity).to_string()),
            ("parties".into(), PARTIES.len().to_string()),
            ("gateway_stride".into(), GATEWAY_STRIDE.to_string()),
            ("fail_fraction".into(), format!("{FAIL_FRACTION}")),
            ("withdrawing_party".into(), PARTIES[WITHDRAWING_PARTY].into()),
            ("epoch_s".into(), format!("{EPOCH_S:.0}")),
        ]
    }

    fn expectations(&self) -> Vec<Expectation> {
        vec![
            expect(
                "settlement_net_abs",
                Comparator::Le,
                1e-6,
                0.0,
                "§3.2: the market clears zero-sum even under churn",
                true,
            ),
            expect(
                "recovered",
                Comparator::Within,
                1.0,
                0.0,
                "§3.3: service returns to baseline once the churn heals",
                true,
            ),
            expect(
                "worst_deficit_pct",
                Comparator::Ge,
                0.1,
                0.1,
                "§3.3: losing a tenth of the fleet plus a member must bite",
                false,
            ),
            expect(
                "notices",
                Comparator::Within,
                1.0,
                0.0,
                "§3.1: every withdrawal is announced by a signed notice",
                true,
            ),
        ]
    }

    fn run(&self, ctx: &Context, fidelity: &Fidelity) -> ExperimentResult {
        let sample = sample_size(fidelity);
        let mut rng = run_rng(seeds::CHURN_WITHDRAWAL, 0);
        let idx = sample_indices(&mut rng, ctx.pool.len(), sample);
        let store = ctx.subset_ephemeris(&idx);
        let steps = store.steps();

        let parties: Vec<PartyId> = PARTIES.iter().map(|&p| PartyId::new(p)).collect();
        let sat_party: Vec<usize> = (0..store.sat_count()).map(|s| s % PARTIES.len()).collect();
        let city_party: Vec<usize> = (0..ctx.cities.len()).map(|c| c % PARTIES.len()).collect();
        let gateways = gateways_every_nth(&ctx.cities, GATEWAY_STRIDE);

        let mut traffic_cfg = TrafficConfig::default();
        traffic_cfg.demand.seed = seeds::CHURN_WITHDRAWAL;
        let cfg = CampaignConfig {
            traffic: traffic_cfg,
            schedule: schedule(steps, store.sat_count()),
            epoch_steps: ((EPOCH_S / ctx.grid.step_s).round() as usize).max(1),
            key_seed: b"churn-withdrawal".to_vec(),
            ..CampaignConfig::default()
        };

        let report = run_campaign(
            &store,
            &ctx.cities,
            &gateways,
            &ctx.config,
            &cfg,
            &sat_party,
            &city_party,
            &parties,
        );

        let party_rows: Vec<Vec<String>> = parties
            .iter()
            .enumerate()
            .map(|(p, id)| {
                vec![
                    id.to_string(),
                    format!("{:+.0}", report.party_delta_mean(p)),
                    format!("{:+.2}", report.settlement.get(&id.0).copied().unwrap_or(0.0)),
                    if p == WITHDRAWING_PARTY { "withdraws".into() } else { "stays".into() },
                ]
            })
            .collect();
        let down_sats_peak = report.down_sats.iter().copied().max().unwrap_or(0);

        let mut result = ExperimentResult::data()
            .scalar("served_ratio_pct", report.churn.served_ratio() * 100.0)
            .scalar("baseline_served_ratio_pct", report.baseline.served_ratio() * 100.0)
            .scalar("worst_deficit_pct", report.worst_deficit() * 100.0)
            .scalar("mean_deficit_pct", report.mean_deficit() * 100.0)
            .scalar("reroutes_total", report.reroutes_total() as f64)
            .scalar("down_sats_peak", down_sats_peak as f64)
            .scalar("recovered", report.recovered() as u8 as f64)
            .scalar("notices", report.notices.len() as f64)
            .scalar("orders", report.orders.len() as f64)
            .scalar("trades", report.trades as f64)
            .scalar("settlement_net_abs", report.settlement_net().abs())
            .series("served_fraction", report.served_fraction.clone())
            .series("baseline_fraction", report.baseline_fraction.clone())
            .series("deficit_fraction", report.deficit_fraction.clone())
            .series("down_sats", report.down_sats.iter().map(|&d| d as f64).collect())
            .series("reroutes", report.reroutes.iter().map(|&r| r as f64).collect())
            .table("parties", &["party", "served delta Mbps", "settlement", "role"], party_rows)
            .note("takeaway: the constellation degrades gracefully — failures and a")
            .note("withdrawal dent the served fraction and force reroutes, but service")
            .note("snaps back to the baseline once the churn heals, and the capacity")
            .note("market keeps clearing zero-sum over the shrinking membership.");
        if let Some(ttr) = report.time_to_recover_steps {
            result = result.scalar("time_to_recover_steps", ttr as f64);
        }
        result
    }
}
