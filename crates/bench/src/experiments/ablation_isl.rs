//! Ablation: bent-pipe vs inter-satellite-link (ISL) relay connectivity.
//!
//! The paper's design omits ISLs to keep satellites simple (§3.1) and
//! lists them as an open question (§4). This ablation quantifies what the
//! omission costs: terminal connectivity under the transparent bent pipe
//! (terminal and ground station must see the *same* satellite) vs an
//! ISL-relay design where traffic may hop between satellites to reach a
//! ground station.

use crate::expectations::{Comparator, Expectation};
use crate::experiment::{Experiment, ExperimentResult};
use crate::experiments::expect;
use crate::{seeds, Context, Fidelity};
use leosim::bentpipe::{bentpipe_connectivity, isl_connectivity_from_store};
use leosim::montecarlo::{run_rng, sample_indices};
use orbital::ground::GroundSite;

/// See module docs.
pub struct AblationIsl;

fn sample_size(fidelity: &Fidelity) -> usize {
    if fidelity.full {
        400
    } else {
        150
    }
}

impl Experiment for AblationIsl {
    fn id(&self) -> &'static str {
        "ablation_isl"
    }

    fn title(&self) -> &'static str {
        "bent-pipe vs ISL relay connectivity"
    }

    fn seeds(&self) -> Vec<u64> {
        vec![seeds::ABLATION_ISL]
    }

    fn params(&self, fidelity: &Fidelity) -> Vec<(String, String)> {
        vec![
            ("terminal".into(), "Tonga".into()),
            ("ground_station".into(), "Sydney".into()),
            ("sample".into(), sample_size(fidelity).to_string()),
            ("isl_range_km".into(), "3000".into()),
        ]
    }

    fn expectations(&self) -> Vec<Expectation> {
        vec![
            expect(
                "bentpipe_pct",
                Comparator::Le,
                5.0,
                5.0,
                "§3.1/§4 ablation: bent pipe ~0% connectivity far from ground stations",
                true,
            ),
            expect(
                "isl4_minus_bentpipe_pct",
                Comparator::Ge,
                10.0,
                10.0,
                "§4 ablation: ISL hops recover a slice of the visibility ceiling",
                false,
            ),
            expect(
                "visibility_minus_isl4_pct",
                Comparator::Ge,
                0.0,
                2.0,
                "sanity: relays cannot beat raw visibility",
                true,
            ),
        ]
    }

    fn run(&self, ctx: &Context, fidelity: &Fidelity) -> ExperimentResult {
        // A remote terminal (Tonga — the paper's §1 disaster scenario) with
        // the operator's only ground station in Sydney.
        let terminal = [GroundSite::from_degrees("Tonga", -21.13, -175.2)];
        let gs = [GroundSite::from_degrees("Sydney-GS", -33.87, 151.21)];

        let sample = sample_size(fidelity);
        let mut rng = run_rng(seeds::ABLATION_ISL, 0);
        let idx = sample_indices(&mut rng, ctx.pool.len(), sample);
        // One copied ephemeris slice serves the visibility tables and both
        // ISL proximity graphs — the pool is propagated once for all rows.
        let store = ctx.subset_ephemeris(&idx);

        let vt_t = ctx.subset_table(&idx, &terminal);
        let vt_g = ctx.subset_table(&idx, &gs);
        let plain: Vec<usize> = (0..idx.len()).collect();
        let visibility = vt_t.coverage_union(&plain, 0).fraction_ones() * 100.0;

        let bp = bentpipe_connectivity(&vt_t, &vt_g)[0].connected.fraction_ones() * 100.0;
        let isl1 = isl_connectivity_from_store(&store, &terminal, &gs, &ctx.config, 3000.0, 1)[0]
            .connected
            .fraction_ones()
            * 100.0;
        let isl4 = isl_connectivity_from_store(&store, &terminal, &gs, &ctx.config, 3000.0, 4)[0]
            .connected
            .fraction_ones()
            * 100.0;

        let rows = vec![
            vec!["satellite visibility (upper bound)".into(), format!("{visibility:.2}")],
            vec!["bent-pipe (no ISL)".into(), format!("{bp:.2}")],
            vec!["ISL relay, 1 hop".into(), format!("{isl1:.2}")],
            vec!["ISL relay, 4 hops".into(), format!("{isl4:.2}")],
        ];
        ExperimentResult::data()
            .scalar("visibility_pct", visibility)
            .scalar("bentpipe_pct", bp)
            .scalar("isl1_pct", isl1)
            .scalar("isl4_pct", isl4)
            .scalar("isl4_minus_bentpipe_pct", isl4 - bp)
            .scalar("visibility_minus_isl4_pct", visibility - isl4)
            .table("connectivity", &["architecture", "terminal connectivity %"], rows)
            .note("takeaway: the bent pipe pays a connectivity penalty whenever the")
            .note("terminal is far from the operator's ground stations; each ISL hop")
            .note("recovers a slice of the raw-visibility ceiling, at satellite-")
            .note("complexity cost — or deploy an in-region ground station instead.")
    }
}
