//! Ablation: bootstrapping — delay-tolerant service and early-adopter
//! tokens for sparse constellations (paper §4).
//!
//! Two halves:
//!
//! 1. **DTN service** — what can a 4/10/25-satellite constellation
//!    actually sell? Store-and-forward delivery latency for IoT-style
//!    bundles shows sparse deployments are useful long before real-time
//!    coverage exists.
//! 2. **Token emission** — five parties join in sequence; the
//!    early-adopter multiplier determines whether joining first pays.

use crate::expectations::{Comparator, Expectation};
use crate::experiment::{Experiment, ExperimentResult};
use crate::experiments::expect;
use crate::{fmt_dur, seeds, Context, Fidelity};
use leosim::dtn::{dtn_stats, simulate_dtn};
use leosim::montecarlo::{run_rng, sample_indices};
use mpleo::bootstrap::{simulate_bootstrap, EmissionSchedule};
use orbital::ground::GroundSite;

/// Sparse constellation sizes swept in the DTN half.
pub const DTN_SIZES: [usize; 4] = [4, 10, 25, 100];

/// See module docs.
pub struct AblationBootstrap;

impl Experiment for AblationBootstrap {
    fn id(&self) -> &'static str {
        "ablation_bootstrap"
    }

    fn title(&self) -> &'static str {
        "bootstrapping: DTN service + early-adopter tokens"
    }

    fn seeds(&self) -> Vec<u64> {
        vec![seeds::ABLATION_BOOTSTRAP]
    }

    fn params(&self, _fidelity: &Fidelity) -> Vec<(String, String)> {
        vec![
            ("dtn_sizes".into(), format!("{DTN_SIZES:?}")),
            ("dtn_route".into(), "Taipei -> New York GS".into()),
            ("token_parties".into(), "5, joining in sequence".into()),
        ]
    }

    fn expectations(&self) -> Vec<Expectation> {
        vec![
            expect(
                "delivered_pct_4sats",
                Comparator::Ge,
                30.0,
                20.0,
                "§4: sparse constellations sell delay-tolerant service from day one",
                false,
            ),
            expect(
                "early_adopter_ratio",
                Comparator::Ge,
                2.0,
                1.0,
                "§4: the early-adopter multiplier makes low-coverage rounds worth joining",
                false,
            ),
        ]
    }

    fn run(&self, ctx: &Context, _fidelity: &Fidelity) -> ExperimentResult {
        let mut result = ExperimentResult::data();

        // --- Part 1: what a sparse constellation delivers ----------------
        let terminal = [GroundSite::from_degrees("Taipei", 25.03, 121.56)];
        let gs = [GroundSite::from_degrees("NY-GS", 40.71, -74.01)];
        let mut rows = Vec::new();
        let mut delivered_series = Vec::new();
        for &n in &DTN_SIZES {
            let mut rng = run_rng(seeds::ABLATION_BOOTSTRAP, n as u64);
            let idx = sample_indices(&mut rng, ctx.pool.len(), n);
            let vt_t = ctx.subset_table(&idx, &terminal);
            let vt_g = ctx.subset_table(&idx, &gs);
            let all: Vec<usize> = (0..n).collect();
            let hourly = (3600.0 / ctx.grid.step_s) as usize;
            let deliveries = simulate_dtn(&vt_t, &vt_g, 0, &all, &[0], hourly);
            let stats = dtn_stats(&deliveries, &ctx.grid);
            delivered_series.push(stats.delivery_ratio * 100.0);
            if n == 4 {
                result = result.scalar("delivered_pct_4sats", stats.delivery_ratio * 100.0);
            }
            rows.push(vec![
                n.to_string(),
                format!("{:.0}", stats.delivery_ratio * 100.0),
                fmt_dur(stats.median_latency_s),
                fmt_dur(stats.max_latency_s),
            ]);
        }
        result = result
            .series("dtn_sizes", DTN_SIZES.iter().map(|&n| n as f64).collect())
            .series("delivered_pct", delivered_series)
            .table(
                "dtn_delivery",
                &["satellites", "delivered %", "median latency", "worst latency"],
                rows,
            )
            .note(format!(
                "(bundles created hourly; horizon {:.1} days)",
                ctx.grid.duration_s() / 86_400.0
            ));

        // --- Part 2: early-adopter token economics -----------------------
        let sub = sample_indices(&mut run_rng(seeds::ABLATION_BOOTSTRAP, 99), ctx.pool.len(), 400);
        let vt = ctx.subset_table(&sub, &ctx.sites);
        let parties = ["round0", "round1", "round2", "round3", "round4"];
        let mut ratio = f64::NAN;
        for (label, name, schedule) in [
            (
                "with 3x early-adopter bonus (decay 0.5/round)",
                "tokens_with_bonus",
                EmissionSchedule::default(),
            ),
            (
                "flat emission (no bonus)",
                "tokens_flat",
                EmissionSchedule { early_multiplier: 1.0, ..Default::default() },
            ),
        ] {
            let out = simulate_bootstrap(&vt, &ctx.weights, &parties, 10, &schedule);
            let mut rows = Vec::new();
            for p in parties {
                rows.push(vec![p.to_string(), format!("{:.0}", out.balances[p])]);
            }
            if name == "tokens_with_bonus" && out.balances["round4"] > 0.0 {
                ratio = out.balances["round0"] / out.balances["round4"];
            }
            let coverage_pct = out.rounds.last().unwrap().coverage_s / vt.grid.duration_s() * 100.0;
            rows.push(vec!["final coverage".into(), format!("{coverage_pct:.1}% pop-weighted")]);
            result = result
                .series(name, parties.iter().map(|p| out.balances[*p]).collect())
                .table(name, &["party (join order)", "tokens"], rows)
                .note(format!("emission schedule: {label}"));
        }
        result
            .scalar("early_adopter_ratio", ratio)
            .note("takeaway: sparse constellations are sellable for delay-tolerant")
            .note("traffic from day one, and an early-adopter multiplier makes the")
            .note("low-coverage rounds worth joining — the paper's two bootstrap levers.")
    }
}
