//! Ablation: churn-rate sweep over the campaign engine.
//!
//! How fast does graceful degradation stop being graceful? The demand
//! matrix and the baseline routing pass (the expensive part) are computed
//! once; a failure campaign then hard-fails 0%, 10%, 25% and 50% of the
//! sampled constellation mid-run and heals it, one campaign per rate, via
//! `traffic::run_campaign_with_routes`. The failure sets are drawn from
//! one seeded permutation, so they are *nested* across rates — a larger
//! rate fails a strict superset of the satellites — which makes the worst
//! per-step deficit monotone in the rate by construction, and every
//! campaign must still return to baseline after the heal.

use crate::expectations::{Comparator, Expectation};
use crate::experiment::{Experiment, ExperimentResult};
use crate::experiments::expect;
use crate::{seeds, Context, Fidelity};
use leosim::montecarlo::{run_rng, sample_indices};
use mpleo::party::PartyId;
use traffic::{
    gateways_every_nth, run_campaign_with_routes, CampaignConfig, ChurnSchedule, DemandMatrix,
    RouteTable, TrafficConfig,
};

/// See module docs.
pub struct AblationChurnRate;

/// The swept failure fractions (nested sets — see module docs).
pub const FRACTIONS: [f64; 4] = [0.0, 0.1, 0.25, 0.5];

/// Slack (percentage points of deficit) tolerated by the monotonicity
/// check: recovering a failed access satellite can locally reshuffle
/// max-min shares, so tiny inversions are float-and-fairness noise, not a
/// broken trend.
pub const MONOTONE_SLACK_PCT: f64 = 0.1;

fn sample_size(fidelity: &Fidelity) -> usize {
    if fidelity.full {
        500
    } else {
        200
    }
}

impl Experiment for AblationChurnRate {
    fn id(&self) -> &'static str {
        "ablation_churn_rate"
    }

    fn title(&self) -> &'static str {
        "graceful degradation vs mid-run failure rate"
    }

    fn seeds(&self) -> Vec<u64> {
        vec![seeds::ABLATION_CHURN_RATE]
    }

    fn params(&self, fidelity: &Fidelity) -> Vec<(String, String)> {
        vec![
            ("sample".into(), sample_size(fidelity).to_string()),
            ("fractions".into(), FRACTIONS.map(|f| format!("{f}")).join(",")),
            ("gateway_stride".into(), "3".into()),
            ("monotone_slack_pct".into(), format!("{MONOTONE_SLACK_PCT}")),
        ]
    }

    fn expectations(&self) -> Vec<Expectation> {
        vec![
            expect(
                "deficit_monotone",
                Comparator::Within,
                1.0,
                0.0,
                "§3.3: failing more satellites never hurts less (nested sets)",
                true,
            ),
            expect(
                "recovered_all",
                Comparator::Within,
                1.0,
                0.0,
                "§3.3: every rate heals back to baseline service",
                true,
            ),
            expect(
                "worst_deficit_frac0_pct",
                Comparator::Le,
                0.0,
                0.0,
                "sanity: a zero-rate campaign is the baseline, exactly",
                true,
            ),
        ]
    }

    fn run(&self, ctx: &Context, fidelity: &Fidelity) -> ExperimentResult {
        let sample = sample_size(fidelity);
        let mut rng = run_rng(seeds::ABLATION_CHURN_RATE, 0);
        let idx = sample_indices(&mut rng, ctx.pool.len(), sample);
        let store = ctx.subset_ephemeris(&idx);
        let steps = store.steps();
        let n_sats = store.sat_count();

        let parties = vec![PartyId::new("pool")];
        let sat_party = vec![0usize; n_sats];
        let city_party = vec![0usize; ctx.cities.len()];
        let gateways = gateways_every_nth(&ctx.cities, 3);
        let sites: Vec<_> = ctx.cities.iter().map(|c| c.site()).collect();

        let mut traffic_cfg = TrafficConfig::default();
        traffic_cfg.demand.seed = seeds::ABLATION_CHURN_RATE;

        // One demand matrix and one routing pass serve every rate point.
        let demand = DemandMatrix::generate(&ctx.cities, &store.grid, &traffic_cfg.demand);
        let routes = RouteTable::build(&store, &sites, &gateways, &ctx.config, &traffic_cfg.graph);

        let mut rows = Vec::new();
        let mut worst_pct = Vec::new();
        let mut mean_pct = Vec::new();
        let mut reroutes = Vec::new();
        let mut recovered_all = true;
        for fraction in FRACTIONS {
            // Same seed at every rate: nested failure sets.
            let cfg = CampaignConfig {
                traffic: traffic_cfg.clone(),
                schedule: ChurnSchedule::new().fail_random_sats(
                    seeds::ABLATION_CHURN_RATE,
                    n_sats,
                    fraction,
                    3 * steps / 10,
                    Some(7 * steps / 10),
                ),
                key_seed: b"ablation-churn-rate".to_vec(),
                ..CampaignConfig::default()
            };
            let report = run_campaign_with_routes(
                &store,
                &ctx.cities,
                &gateways,
                &ctx.config,
                &demand,
                &routes,
                &cfg,
                &sat_party,
                &city_party,
                &parties,
            );
            recovered_all &= report.recovered();
            rows.push(vec![
                format!("{:.0}%", fraction * 100.0),
                format!("{}", report.down_sats.iter().copied().max().unwrap_or(0)),
                format!("{:.2}", report.worst_deficit() * 100.0),
                format!("{:.2}", report.mean_deficit() * 100.0),
                format!("{}", report.reroutes_total()),
                if report.recovered() { "yes".into() } else { "NO".into() },
            ]);
            worst_pct.push(report.worst_deficit() * 100.0);
            mean_pct.push(report.mean_deficit() * 100.0);
            reroutes.push(report.reroutes_total() as f64);
        }

        let deficit_monotone =
            worst_pct.windows(2).all(|w| w[1] >= w[0] - MONOTONE_SLACK_PCT) as u8 as f64;

        ExperimentResult::data()
            .scalar("deficit_monotone", deficit_monotone)
            .scalar("recovered_all", recovered_all as u8 as f64)
            .scalar("worst_deficit_frac0_pct", worst_pct[0])
            .scalar("worst_deficit_max_pct", worst_pct[worst_pct.len() - 1])
            .scalar("reroutes_max", reroutes[reroutes.len() - 1])
            .series("fractions", FRACTIONS.to_vec())
            .series("worst_deficit_pct", worst_pct)
            .series("mean_deficit_pct", mean_pct)
            .series("reroutes_total", reroutes)
            .table(
                "sweep",
                &[
                    "failed",
                    "down peak",
                    "worst deficit %",
                    "mean deficit %",
                    "reroutes",
                    "recovered",
                ],
                rows,
            )
            .note("takeaway: degradation scales with the churn rate instead of")
            .note("cliff-diving — nested failure sets keep the deficit monotone in")
            .note("the rate — and every campaign returns to baseline service once")
            .note("the failed satellites heal.")
    }
}
