//! Figure 2: percentage of time *without* coverage vs constellation size,
//! for a receiver in Taipei.
//!
//! Paper protocol: coverage gap over one week, averaged over 100 runs; each
//! run randomly samples N satellites from the Starlink network. Headline
//! numbers: >50% uncovered at 100 satellites (with gaps over an hour);
//! >=99.5% coverage needs ~1000 satellites.

use crate::expectations::{Comparator, Expectation};
use crate::experiment::{Experiment, ExperimentResult};
use crate::experiments::expect;
use crate::{fmt_dur, seeds, Context, Fidelity};
use leosim::coverage::{Aggregate, CoverageStats};
use leosim::montecarlo::{run_samples, sample_indices};

/// The constellation sizes swept.
pub const SIZES: [usize; 7] = [10, 50, 100, 200, 500, 1000, 2000];

/// See module docs.
pub struct Fig2;

impl Experiment for Fig2 {
    fn id(&self) -> &'static str {
        "fig2"
    }

    fn title(&self) -> &'static str {
        "time without coverage vs number of satellites (Taipei)"
    }

    fn seeds(&self) -> Vec<u64> {
        vec![seeds::FIG2]
    }

    fn params(&self, fidelity: &Fidelity) -> Vec<(String, String)> {
        vec![
            ("receiver".into(), "Taipei".into()),
            ("sizes".into(), format!("{SIZES:?}")),
            ("runs".into(), fidelity.runs.to_string()),
        ]
    }

    fn expectations(&self) -> Vec<Expectation> {
        vec![
            expect(
                "uncovered_pct_100",
                Comparator::Ge,
                50.0,
                15.0,
                "§2 Fig 2: >50% of time uncovered at 100 satellites",
                true,
            ),
            expect(
                "max_gap_s_100",
                Comparator::Ge,
                3600.0,
                1800.0,
                "§2 Fig 2: continuous gaps of over an hour at 100 satellites",
                false,
            ),
            expect(
                "coverage_pct_1000",
                Comparator::Ge,
                99.5,
                1.0,
                "§2 Fig 2: ≥99.5% coverage around 1000 satellites",
                false,
            ),
            expect(
                "uncovered_monotone",
                Comparator::Ge,
                1.0,
                0.0,
                "§2 Fig 2: monotone improvement with constellation size",
                true,
            ),
        ]
    }

    fn run(&self, ctx: &Context, fidelity: &Fidelity) -> ExperimentResult {
        let taipei = [geodata::taipei()];
        let vt = ctx.table_for(&taipei);
        let n = vt.sat_count();
        let mut rows = Vec::new();
        let mut uncovered_series = Vec::new();
        let mut gap_series = Vec::new();
        let mut result = ExperimentResult::data();
        for &size in &SIZES {
            // Parallel runs on the shared pool; per-run streams and ordered
            // collection keep the aggregates thread-count invariant.
            let per_run: Vec<(f64, f64)> = run_samples(seeds::FIG2, fidelity.runs, |rng, _| {
                let subset = sample_indices(rng, n, size);
                let cov = vt.coverage_union(&subset, 0);
                let stats = CoverageStats::from_bitset(&cov, &vt.grid);
                (stats.uncovered_fraction * 100.0, stats.max_gap_s)
            });
            let uncovered: Vec<f64> = per_run.iter().map(|&(u, _)| u).collect();
            let max_gaps: Vec<f64> = per_run.iter().map(|&(_, g)| g).collect();
            let unc = Aggregate::from_samples(&uncovered);
            let gap = Aggregate::from_samples(&max_gaps);
            uncovered_series.push(unc.mean);
            gap_series.push(gap.mean);
            if size == 100 {
                result =
                    result.scalar("uncovered_pct_100", unc.mean).scalar("max_gap_s_100", gap.mean);
            }
            if size == 1000 {
                result = result.scalar("coverage_pct_1000", 100.0 - unc.mean);
            }
            if size == 2000 {
                result = result.scalar("coverage_pct_2000", 100.0 - unc.mean);
            }
            rows.push(vec![
                size.to_string(),
                format!("{:.2}", unc.mean),
                format!("{:.2}", unc.std_dev),
                fmt_dur(gap.mean),
                format!("{:.3}", 100.0 - unc.mean),
            ]);
        }
        let monotone = uncovered_series.windows(2).all(|w| w[1] <= w[0]);
        result
            .scalar("uncovered_monotone", if monotone { 1.0 } else { 0.0 })
            .series("sizes", SIZES.iter().map(|&s| s as f64).collect())
            .series("uncovered_pct", uncovered_series)
            .series("mean_max_gap_s", gap_series)
            .table(
                "coverage_vs_size",
                &["satellites", "no-coverage %", "std", "mean max gap", "coverage %"],
                rows,
            )
            .note("paper shape: >50% uncovered @100 sats (gaps over an hour);")
            .note("             >=99.5% coverage reached around 1000 sats.")
    }
}
