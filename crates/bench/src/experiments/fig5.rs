//! Figure 5: coverage reduction when half the constellation denies service.
//!
//! Paper protocol: base constellations of L in {200, 500, 1000, 2000}
//! satellites; withdraw a random L/2; population-weighted coverage over one
//! week, 100 runs. Headline: 24.17% reduction (1 d 16 h) at L=200,
//! shrinking to 0.37% at L=2000.

use crate::expectations::{Comparator, Expectation};
use crate::experiment::{Experiment, ExperimentResult};
use crate::experiments::expect;
use crate::{fmt_dur, seeds, Context, Fidelity};
use mpleo::robustness::half_withdrawal_experiment;

/// Constellation sizes swept.
pub const SIZES: [usize; 4] = [200, 500, 1000, 2000];

/// See module docs.
pub struct Fig5;

impl Experiment for Fig5 {
    fn id(&self) -> &'static str {
        "fig5"
    }

    fn title(&self) -> &'static str {
        "coverage lost when half the satellites withdraw"
    }

    fn seeds(&self) -> Vec<u64> {
        vec![seeds::FIG5]
    }

    fn params(&self, fidelity: &Fidelity) -> Vec<(String, String)> {
        vec![
            ("sizes".into(), format!("{SIZES:?}")),
            ("withdrawn".into(), "random L/2".into()),
            ("runs".into(), fidelity.runs.to_string()),
        ]
    }

    fn expectations(&self) -> Vec<Expectation> {
        vec![
            expect(
                "loss_pct_200",
                Comparator::Within,
                24.17,
                8.0,
                "§3.3 Fig 5: 24.17% reduction (1 d 16 h per week) at L=200",
                false,
            ),
            expect(
                "loss_pct_2000",
                Comparator::Le,
                2.0,
                1.0,
                "§3.3 Fig 5: 0.37% reduction at L=2000",
                true,
            ),
            expect(
                "loss_monotone",
                Comparator::Ge,
                1.0,
                0.0,
                "§3.3 Fig 5: loss subsides as the constellation grows",
                true,
            ),
        ]
    }

    fn run(&self, ctx: &Context, fidelity: &Fidelity) -> ExperimentResult {
        let vt = ctx.city_table();
        let week_s = 7.0 * 86_400.0;

        let mut rows = Vec::new();
        let mut losses = Vec::new();
        let mut result = ExperimentResult::data();
        for &l in &SIZES {
            let agg = half_withdrawal_experiment(&vt, l, &ctx.weights, fidelity.runs, seeds::FIG5);
            losses.push(agg.mean);
            result = result.scalar(&format!("loss_pct_{l}"), agg.mean);
            rows.push(vec![
                l.to_string(),
                format!("{:.2}", agg.mean),
                format!("{:.2}", agg.std_dev),
                fmt_dur(agg.mean / 100.0 * week_s),
            ]);
        }
        let monotone = losses.windows(2).all(|w| w[1] <= w[0]);
        result
            .scalar("loss_monotone", if monotone { 1.0 } else { 0.0 })
            .series("sizes", SIZES.iter().map(|&s| s as f64).collect())
            .series("loss_pct", losses)
            .table(
                "half_withdrawal",
                &["constellation L", "coverage loss %", "std", "loss per week"],
                rows,
            )
            .note("paper shape: large loss at L=200 (24.17%, i.e. 1d 16h/week),")
            .note("             subsiding to 0.37% at L=2000.")
    }
}
