//! Ablation: the capital cost of coverage — go-it-alone vs MP-LEO.
//!
//! Converts the Fig. 2 coverage curve into 10-year dollars using public
//! Starlink-class cost figures, pricing the paper's §1 claim ("investments
//! between 10-30 billion dollars") and its §2 punchline (a 50-satellite
//! contribution buys 1000-satellite coverage).

use crate::expectations::{Comparator, Expectation};
use crate::experiment::{Experiment, ExperimentResult};
use crate::experiments::expect;
use crate::{seeds, Context, Fidelity};
use leosim::coverage::CoverageStats;
use leosim::montecarlo::{run_samples, sample_indices};
use mpleo::economics::{go_it_alone, mp_leo_share, CostModel};

/// Constellation sizes on the measured cost curve.
pub const SIZES: [usize; 7] = [10, 50, 100, 200, 500, 1000, 2000];
/// Availability targets priced.
pub const TARGETS: [f64; 3] = [0.9, 0.99, 0.995];

/// See module docs.
pub struct AblationEconomics;

impl Experiment for AblationEconomics {
    fn id(&self) -> &'static str {
        "ablation_economics"
    }

    fn title(&self) -> &'static str {
        "cost of coverage: go-it-alone vs MP-LEO share (Taipei)"
    }

    fn seeds(&self) -> Vec<u64> {
        vec![seeds::ABLATION_ECONOMICS]
    }

    fn params(&self, fidelity: &Fidelity) -> Vec<(String, String)> {
        let model = CostModel::default();
        vec![
            ("sizes".into(), format!("{SIZES:?}")),
            ("targets".into(), format!("{TARGETS:?}")),
            ("runs".into(), fidelity.runs.to_string()),
            (
                "cost_model".into(),
                format!(
                    "${:.1}M sat + ${:.1}M launch, ${:.2}M/yr ops, {:.0}-yr life",
                    model.sat_capex_musd,
                    model.launch_per_sat_musd,
                    model.annual_ops_per_sat_musd,
                    model.design_life_years
                ),
            ),
        ]
    }

    fn expectations(&self) -> Vec<Expectation> {
        vec![
            expect(
                "full_constellation_10yr_busd",
                Comparator::Within,
                20.0,
                10.0,
                "§1: full-constellation investments between 10-30 billion dollars",
                true,
            ),
            expect(
                "saving_at_99",
                Comparator::Ge,
                5.0,
                4.0,
                "§2: a small contribution buys full-constellation coverage (~11x cheaper)",
                false,
            ),
        ]
    }

    fn run(&self, ctx: &Context, fidelity: &Fidelity) -> ExperimentResult {
        // Measure the size -> availability curve (Fig. 2's data).
        let taipei = [geodata::taipei()];
        let vt = ctx.table_for(&taipei);
        let mut curve = Vec::new();
        for &size in &SIZES {
            // Parallel runs on the shared pool; summing the run-ordered
            // samples keeps the floating-point reduction order (and the
            // result bits) identical to the old sequential accumulation.
            let fractions = run_samples(seeds::ABLATION_ECONOMICS, fidelity.runs, |rng, _| {
                let subset = sample_indices(rng, vt.sat_count(), size);
                CoverageStats::from_bitset(&vt.coverage_union(&subset, 0), &vt.grid)
                    .covered_fraction
            });
            let acc: f64 = fractions.iter().sum();
            curve.push((size, acc / fidelity.runs as f64));
        }

        let model = CostModel::default();
        let full_busd = model.total_cost_musd(4400, 10.0) / 1000.0;

        let mut rows = Vec::new();
        let mut result = ExperimentResult::data();
        for &target in &TARGETS {
            let alone = go_it_alone(&curve, target, &model);
            let shared = mp_leo_share(&curve, target, 11, &model);
            match (alone, shared) {
                (Some(a), Some(s)) => {
                    let saving = a.cost_10yr_musd / s.cost_10yr_musd;
                    if (target - 0.99).abs() < 1e-9 {
                        result = result.scalar("saving_at_99", saving);
                    }
                    rows.push(vec![
                        format!("{:.1}%", target * 100.0),
                        a.own_sats.to_string(),
                        format!("{:.2}", a.cost_10yr_musd / 1000.0),
                        s.own_sats.to_string(),
                        format!("{:.2}", s.cost_10yr_musd / 1000.0),
                        format!("{saving:.1}x"),
                    ]);
                }
                _ => rows.push(vec![
                    format!("{:.1}%", target * 100.0),
                    "unreachable at sampled sizes".into(),
                    "-".into(),
                    "-".into(),
                    "-".into(),
                    "-".into(),
                ]),
            }
        }
        result
            .scalar("full_constellation_10yr_busd", full_busd)
            .series("curve_sizes", curve.iter().map(|(s, _)| *s as f64).collect())
            .series("curve_availability", curve.iter().map(|(_, a)| *a).collect())
            .table(
                "cost_of_coverage",
                &[
                    "availability target",
                    "alone: sats",
                    "alone: 10-yr $B",
                    "MP-LEO (11 parties): sats",
                    "MP-LEO: 10-yr $B",
                    "saving",
                ],
                rows,
            )
            .note(format!(
                "full-constellation check: 4400 sats over 10 years = ${full_busd:.1}B (paper: $10-30B)"
            ))
            .note("takeaway: the coverage a party needs costs ~11x less as an MP-LEO")
            .note("share, because the curve's steep region (Fig. 2) is paid once and")
            .note("split — the paper's economic case in dollars.")
    }
}
