//! Ablation: fixed vs scarcity (dynamic) pricing under skewed stakes.
//!
//! The paper leaves market design open (§3.2, §4): "These prices can be
//! dynamically set, leading to open data markets, or they can be
//! predetermined." This ablation settles the same service records under
//! both models and compares how revenue tracks stake.

use crate::expectations::{Comparator, Expectation};
use crate::experiment::{Experiment, ExperimentResult};
use crate::experiments::expect;
use crate::{seeds, Context, Fidelity};
use leosim::montecarlo::{run_rng, sample_indices};
use mpleo::incentives::{service_records, settle, visible_count_matrix, PricingModel};
use mpleo::party::{allocate_by_ratio, skewed_ratios, PartyId};
use std::collections::HashMap;

/// See module docs.
pub struct AblationPricing;

fn sample_size(fidelity: &Fidelity) -> usize {
    if fidelity.full {
        250
    } else {
        100
    }
}

impl Experiment for AblationPricing {
    fn id(&self) -> &'static str {
        "ablation_pricing"
    }

    fn title(&self) -> &'static str {
        "fixed vs dynamic pricing revenue split (3:1:1 stakes)"
    }

    fn seeds(&self) -> Vec<u64> {
        vec![seeds::ABLATION_PRICING]
    }

    fn params(&self, fidelity: &Fidelity) -> Vec<(String, String)> {
        vec![
            ("sample".into(), sample_size(fidelity).to_string()),
            ("stakes".into(), "3:1:1, interleaved".into()),
            ("consumer_cities".into(), "5".into()),
            ("dynamic_surge".into(), "3.0".into()),
        ]
    }

    fn expectations(&self) -> Vec<Expectation> {
        vec![
            expect(
                "party0_over_party1_fixed",
                Comparator::Ge,
                1.5,
                1.0,
                "§3.2: revenue tracks stake (3:1 stakes → ~3:1 revenue)",
                false,
            ),
            expect(
                "dynamic_over_fixed_volume",
                Comparator::Ge,
                0.5,
                0.3,
                "§3.2/§4: both models settle comparable volume",
                false,
            ),
        ]
    }

    fn run(&self, ctx: &Context, fidelity: &Fidelity) -> ExperimentResult {
        let sample = sample_size(fidelity);
        let mut rng = run_rng(seeds::ABLATION_PRICING, 0);
        let idx = sample_indices(&mut rng, ctx.pool.len(), sample);
        // Five consumer cities; consumers are a separate party so the whole
        // provider side is revenue-positive.
        let sites = &ctx.sites[..5];
        let vt = ctx.subset_table(&idx, sites);

        // Stakes 3:1:1 over the sample, interleaved.
        let counts = allocate_by_ratio(sample, &skewed_ratios(3.0, 2));
        let mut sat_owner: HashMap<usize, PartyId> = HashMap::new();
        let mut cursor = 0;
        for (pi, &c) in counts.iter().enumerate() {
            for k in 0..c {
                let sat = (cursor + k) % sample;
                sat_owner.entry(sat).or_insert_with(|| PartyId::new(format!("party-{pi}")));
            }
            cursor += c;
        }
        // Fill any holes deterministically.
        for s in 0..sample {
            sat_owner.entry(s).or_insert_with(|| PartyId::new("party-0"));
        }
        let site_consumer: HashMap<usize, PartyId> =
            (0..sites.len()).map(|s| (s, PartyId::new("consumers"))).collect();

        let all: Vec<usize> = (0..sample).collect();
        let records = service_records(&vt, &all);
        let counts_matrix = visible_count_matrix(&vt, &all);

        let fixed = settle(
            &records,
            &sat_owner,
            &site_consumer,
            PricingModel::Fixed { rate: 1.0 },
            &counts_matrix,
        );
        let dynamic = settle(
            &records,
            &sat_owner,
            &site_consumer,
            PricingModel::Dynamic { base: 1.0, surge: 3.0 },
            &counts_matrix,
        );

        let mut rows = Vec::new();
        let mut result = ExperimentResult::data();
        for (pi, &c) in counts.iter().enumerate() {
            let id = PartyId::new(format!("party-{pi}"));
            result = result
                .scalar(&format!("fixed_revenue_party{pi}"), fixed.balance(&id))
                .scalar(&format!("dynamic_revenue_party{pi}"), dynamic.balance(&id));
            rows.push(vec![
                id.to_string(),
                c.to_string(),
                format!("{:.0}", fixed.balance(&id)),
                format!("{:.0}", dynamic.balance(&id)),
            ]);
        }
        rows.push(vec![
            "consumers".into(),
            "0".into(),
            format!("{:.0}", fixed.balance(&PartyId::new("consumers"))),
            format!("{:.0}", dynamic.balance(&PartyId::new("consumers"))),
        ]);
        let p0 = fixed.balance(&PartyId::new("party-0"));
        let p1 = fixed.balance(&PartyId::new("party-1"));
        // Ratios with a zero denominator are censored to finite sentinels
        // (non-finite floats don't survive the JSON result): a dominant
        // numerator caps high, an empty one reads 1.0 / 0.0.
        let stake_ratio = if p1 > 0.0 {
            p0 / p1
        } else if p0 > 0.0 {
            1.0e6
        } else {
            1.0
        };
        let volume_ratio = if fixed.volume > 0.0 {
            dynamic.volume / fixed.volume
        } else if dynamic.volume > 0.0 {
            1.0e6
        } else {
            0.0
        };
        result
            .scalar("party0_over_party1_fixed", stake_ratio)
            .scalar("fixed_volume", fixed.volume)
            .scalar("dynamic_volume", dynamic.volume)
            .scalar("dynamic_over_fixed_volume", volume_ratio)
            .table(
                "revenue_split",
                &["party", "satellites", "fixed revenue", "dynamic revenue"],
                rows,
            )
            .note(format!(
                "fixed volume: {:.0} credits, dynamic volume: {:.0} credits",
                fixed.volume, dynamic.volume
            ))
            .note("takeaway: both models pay roughly in proportion to stake, but")
            .note("scarcity pricing shifts revenue toward satellites that serve")
            .note("steps with few alternatives — rewarding exactly the gap-filling")
            .note("placements the paper's incentive argument wants to encourage.")
    }
}
