//! Traffic engine: diurnal demand routed over the shared constellation.
//!
//! The paper's economics (§2–3) assume parties trade *spare capacity* —
//! which presupposes a load model that says how much capacity is spare and
//! when. This experiment drives the `traffic` crate end to end: per-city
//! diurnal offered load from the metro populations, per-step routing over
//! the shared ephemeris, max-min-fair allocation under satellite and
//! gateway caps, per-party accounting, and finally the epoch summarizer
//! feeding the `dcp` capacity market with demand-driven orders. The
//! headline checks: the order book clears zero-sum, latency under load
//! stays LEO-grade, and the offered load actually breathes diurnally.

use crate::expectations::{Comparator, Expectation};
use crate::experiment::{Experiment, ExperimentResult};
use crate::experiments::expect;
use crate::{seeds, Context, Fidelity};
use leosim::montecarlo::{run_rng, sample_indices};
use mpleo::party::PartyId;
use traffic::{
    clear_market, epoch_orders, gateways_every_nth, party_keys, run_traffic, summarize_epochs,
    TrafficConfig,
};

/// See module docs.
pub struct TrafficDiurnal;

/// The experiment's party set: three operators sharing the constellation.
pub const PARTIES: [&str; 3] = ["alpha", "beta", "gamma"];

/// Gateway placement stride over the 21 paper cities.
pub const GATEWAY_STRIDE: usize = 3;

/// Epoch length for market summarization, seconds.
pub const EPOCH_S: f64 = 6.0 * 3600.0;

fn sample_size(fidelity: &Fidelity) -> usize {
    if fidelity.full {
        600
    } else {
        250
    }
}

/// The run's traffic configuration (shared with the CLI demo so the two
/// always agree); demand jitter draws from [`seeds::TRAFFIC`].
pub fn config() -> TrafficConfig {
    let mut cfg = TrafficConfig::default();
    cfg.demand.seed = seeds::TRAFFIC;
    cfg
}

impl Experiment for TrafficDiurnal {
    fn id(&self) -> &'static str {
        "traffic_diurnal"
    }

    fn title(&self) -> &'static str {
        "diurnal user load over the shared constellation"
    }

    fn seeds(&self) -> Vec<u64> {
        vec![seeds::TRAFFIC]
    }

    fn params(&self, fidelity: &Fidelity) -> Vec<(String, String)> {
        let cfg = config();
        vec![
            ("sample".into(), sample_size(fidelity).to_string()),
            ("parties".into(), PARTIES.len().to_string()),
            ("gateway_stride".into(), GATEWAY_STRIDE.to_string()),
            ("epoch_s".into(), format!("{EPOCH_S:.0}")),
            ("take_rate".into(), format!("{}", cfg.demand.take_rate)),
            ("mbps_per_user".into(), format!("{}", cfg.demand.mbps_per_user)),
            ("sat_capacity_mbps".into(), format!("{}", cfg.sat_capacity_mbps)),
            ("gateway_capacity_mbps".into(), format!("{}", cfg.gateway_capacity_mbps)),
            ("isl_max_hops".into(), cfg.graph.max_hops.to_string()),
        ]
    }

    fn expectations(&self) -> Vec<Expectation> {
        vec![
            expect(
                "settlement_net_abs",
                Comparator::Le,
                1e-6,
                0.0,
                "§3.2: the capacity market settles zero-sum",
                true,
            ),
            expect(
                "served_ratio_pct",
                Comparator::Ge,
                30.0,
                20.0,
                "§2: a shared constellation serves the pooled metro demand",
                false,
            ),
            expect(
                "p99_latency_ms",
                Comparator::Le,
                60.0,
                40.0,
                "§2: LEO latency stays millisecond-level even under load",
                false,
            ),
            expect(
                "offered_peak_trough",
                Comparator::Ge,
                1.15,
                0.1,
                "demand model: the global aggregate keeps a diurnal swing",
                true,
            ),
        ]
    }

    fn run(&self, ctx: &Context, fidelity: &Fidelity) -> ExperimentResult {
        let sample = sample_size(fidelity);
        let mut rng = run_rng(seeds::TRAFFIC, 0);
        let idx = sample_indices(&mut rng, ctx.pool.len(), sample);
        let store = ctx.subset_ephemeris(&idx);

        let parties: Vec<PartyId> = PARTIES.iter().map(|&p| PartyId::new(p)).collect();
        // Interleaved ownership: satellite s belongs to party s mod 3, city
        // c is sponsored by party c mod 3 — the paper's multi-party share.
        let sat_party: Vec<usize> = (0..store.sat_count()).map(|s| s % PARTIES.len()).collect();
        let city_party: Vec<usize> = (0..ctx.cities.len()).map(|c| c % PARTIES.len()).collect();
        let gateways = gateways_every_nth(&ctx.cities, GATEWAY_STRIDE);

        let cfg = config();
        let report = run_traffic(
            &store,
            &ctx.cities,
            &gateways,
            &ctx.config,
            &cfg,
            &sat_party,
            &city_party,
            &parties,
        );

        // Epoch summaries feed the capacity market.
        let epoch_steps = ((EPOCH_S / report.step_s).round() as usize).max(1);
        let summaries = summarize_epochs(&report, epoch_steps);
        let keys = party_keys(&parties, b"traffic-diurnal");
        let orders = epoch_orders(&summaries, &keys, 1.0);
        let book = clear_market(&orders);
        let traded_mbps: u64 = book.trades().iter().map(|t| t.quantity).sum();
        let settlement = book.settlement();
        let settlement_net_abs: f64 = settlement.values().sum::<f64>().abs();

        let party_rows: Vec<Vec<String>> = report
            .party_summary()
            .iter()
            .map(|p| {
                vec![
                    p.party.to_string(),
                    format!("{:.0}", p.offered_mbps),
                    format!("{:.0}", p.served_mbps),
                    format!("{:.0}", p.carried_mbps),
                    format!("{:.0}", p.spare_mbps),
                    format!("{:+.2}", settlement.get(&p.party.0).copied().unwrap_or(0.0)),
                ]
            })
            .collect();
        let city_rows: Vec<Vec<String>> = report
            .cities
            .iter()
            .enumerate()
            .map(|(c, name)| {
                vec![
                    name.clone(),
                    format!("{:.0}", report.offered_mean_mbps[c]),
                    format!("{:.0}", report.served_mean_mbps[c]),
                    format!("{:.1}", report.latency[c].availability() * 100.0),
                ]
            })
            .collect();

        let mut result = ExperimentResult::data()
            .scalar("served_ratio_pct", report.served_ratio() * 100.0)
            .scalar("drop_pct", report.drop_pct())
            .scalar("offered_peak_trough", report.offered_peak_trough())
            .scalar("epochs", summaries.len() as f64)
            .scalar("orders", orders.len() as f64)
            .scalar("trades", book.trades().len() as f64)
            .scalar("traded_mbps", traded_mbps as f64)
            .scalar("settlement_net_abs", settlement_net_abs)
            .series("total_offered_mbps", report.total_offered_steps.clone())
            .series("total_served_mbps", report.total_served_steps.clone())
            .table(
                "parties",
                &[
                    "party",
                    "offered Mbps",
                    "served Mbps",
                    "carried Mbps",
                    "spare Mbps",
                    "settlement",
                ],
                party_rows,
            )
            .table("cities", &["city", "offered Mbps", "served Mbps", "served steps %"], city_rows)
            .note("takeaway: metro demand breathes with local solar time; the shared")
            .note("constellation serves it max-min fairly, and each party's leftover")
            .note("surplus/deficit becomes demand-driven order flow that the capacity")
            .note("market clears zero-sum.");
        if let (Some(p50), Some(p99)) =
            (report.pooled_latency_ms(0.5), report.pooled_latency_ms(0.99))
        {
            result = result.scalar("p50_latency_ms", p50).scalar("p99_latency_ms", p99);
        }
        result
    }
}
