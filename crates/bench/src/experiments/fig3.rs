//! Figure 3: satellite idle time vs number of cities served.
//!
//! Paper protocol: terminals at 1..=21 cities (top-20 most populated, one
//! per country, plus Melbourne); a satellite is idle when not connected to
//! any terminal. Headline: serving one city leaves satellites idle 99% of
//! the time; idle time falls as the served set grows.

use crate::expectations::{Comparator, Expectation};
use crate::experiment::{Experiment, ExperimentResult};
use crate::experiments::expect;
use crate::{seeds, Context, Fidelity};
use leosim::idle::mean_idle_fraction;
use leosim::montecarlo::{run_rng, sample_indices};

/// See module docs.
pub struct Fig3;

fn sample_size(fidelity: &Fidelity) -> usize {
    if fidelity.full {
        1000
    } else {
        300
    }
}

impl Experiment for Fig3 {
    fn id(&self) -> &'static str {
        "fig3"
    }

    fn title(&self) -> &'static str {
        "satellite idle time vs number of cities served"
    }

    fn seeds(&self) -> Vec<u64> {
        vec![seeds::FIG3]
    }

    fn params(&self, fidelity: &Fidelity) -> Vec<(String, String)> {
        vec![
            ("constellation_sample".into(), sample_size(fidelity).to_string()),
            ("cities".into(), "1..=21".into()),
        ]
    }

    fn expectations(&self) -> Vec<Expectation> {
        vec![
            expect(
                "idle_pct_1_city",
                Comparator::Ge,
                95.0,
                3.0,
                "§2 Fig 3: ~99% idle when serving one city",
                true,
            ),
            expect(
                "idle_drop_pct",
                Comparator::Ge,
                1.0,
                1.0,
                "§2 Fig 3: idle time decreases as the served set grows",
                true,
            ),
        ]
    }

    fn run(&self, ctx: &Context, fidelity: &Fidelity) -> ExperimentResult {
        // The paper samples a Starlink deployment; we take a deterministic
        // random sample of the pool as "the constellation" whose idle time
        // is measured.
        let n = sample_size(fidelity);
        let mut rng = run_rng(seeds::FIG3, 0);
        let sample = sample_indices(&mut rng, ctx.pool.len(), n);
        let vt = ctx.subset_table(&sample, &ctx.sites);

        let mut rows = Vec::new();
        let mut idle_series = Vec::new();
        for cities in 1..=21usize {
            let served: Vec<usize> = (0..cities).collect();
            let idle = mean_idle_fraction(&vt, &served);
            idle_series.push(idle * 100.0);
            rows.push(vec![
                cities.to_string(),
                vt.site_names[cities - 1].clone(),
                format!("{:.2}", idle * 100.0),
                format!("{:.2}", (1.0 - idle) * 100.0),
            ]);
        }
        let first = idle_series[0];
        let last = *idle_series.last().unwrap();
        ExperimentResult::data()
            .scalar("idle_pct_1_city", first)
            .scalar("idle_pct_21_cities", last)
            .scalar("idle_drop_pct", first - last)
            .series("idle_pct", idle_series)
            .table(
                "idle_vs_cities",
                &["cities served", "last city added", "idle %", "busy %"],
                rows,
            )
            .note("paper shape: ~99% idle at 1 city, monotonically decreasing as")
            .note("             the served set expands across the globe.")
    }
}
