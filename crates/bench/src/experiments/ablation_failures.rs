//! Ablation: stochastic satellite failures and replenishment.
//!
//! Withdrawals (Figs. 5/6) are adversarial; failures are the everyday case
//! the paper also demands robustness against ("How do we deal with
//! satellite failures?", §1). This study runs an exponential-lifetime
//! failure process over the constellation and compares coverage with and
//! without a replenishment launch cadence.

use crate::expectations::{Comparator, Expectation};
use crate::experiment::{Experiment, ExperimentResult};
use crate::experiments::expect;
use crate::{seeds, Context, Fidelity};
use leosim::montecarlo::{run_rng, sample_indices};
use mpleo::failures::{simulate_failures, FailureModel};

/// See module docs.
pub struct AblationFailures;

fn sample_size(fidelity: &Fidelity) -> usize {
    if fidelity.full {
        500
    } else {
        200
    }
}

impl Experiment for AblationFailures {
    fn id(&self) -> &'static str {
        "ablation_failures"
    }

    fn title(&self) -> &'static str {
        "failure process + replenishment (Taipei coverage)"
    }

    fn seeds(&self) -> Vec<u64> {
        vec![seeds::ABLATION_FAILURES, seeds::ABLATION_FAILURES_PROCESS]
    }

    fn params(&self, fidelity: &Fidelity) -> Vec<(String, String)> {
        vec![
            ("sample".into(), sample_size(fidelity).to_string()),
            ("mtbf_days".into(), "20 (accelerated)".into()),
            ("replenishment".into(), "daily batch of 5".into()),
        ]
    }

    fn expectations(&self) -> Vec<Expectation> {
        vec![
            expect(
                "nofail_minus_fail_pct",
                Comparator::Ge,
                0.0,
                1.0,
                "§1 ablation: failures degrade coverage (smoothly, no cliff)",
                true,
            ),
            expect(
                "replenish_minus_fail_pct",
                Comparator::Ge,
                0.0,
                2.0,
                "§1 ablation: a modest replenishment cadence holds the steady state",
                false,
            ),
        ]
    }

    fn run(&self, ctx: &Context, fidelity: &Fidelity) -> ExperimentResult {
        let taipei = [geodata::taipei()];
        let n = sample_size(fidelity);
        let mut rng = run_rng(seeds::ABLATION_FAILURES, 0);
        let idx = sample_indices(&mut rng, ctx.pool.len(), n);
        let vt = ctx.subset_table(&idx, &taipei);
        let all: Vec<usize> = (0..n).collect();
        let window = (3600.0 / ctx.grid.step_s).max(1.0) as usize;

        // Accelerated failure model so the effect is visible within the
        // horizon: MTBF of 20 days (real satellites: years — scale, not
        // shape).
        let mtbf = 20.0 * 86_400.0;
        let scenarios = [
            (
                "no failures",
                "mean_cov_pct_nofail",
                FailureModel { mtbf_s: f64::INFINITY, launch_interval_s: 0.0, batch_size: 0 },
            ),
            (
                "failures, no replenishment",
                "mean_cov_pct_fail",
                FailureModel { mtbf_s: mtbf, launch_interval_s: 0.0, batch_size: 0 },
            ),
            (
                "failures + daily batch of 5",
                "mean_cov_pct_replenished",
                FailureModel { mtbf_s: mtbf, launch_interval_s: 86_400.0, batch_size: 5 },
            ),
        ];
        let mut rows = Vec::new();
        let mut result = ExperimentResult::data();
        let mut means = Vec::new();
        for (label, key, model) in scenarios {
            let run =
                simulate_failures(&vt, &all, 0, &model, window, seeds::ABLATION_FAILURES_PROCESS);
            let mean_pct = run.mean_coverage() * 100.0;
            means.push(mean_pct);
            result = result.scalar(key, mean_pct);
            rows.push(vec![
                label.to_string(),
                format!("{}", run.failures),
                format!("{}", run.replacements),
                format!("{}", run.min_alive()),
                format!("{mean_pct:.2}"),
                format!("{:.2}", run.coverage.last().unwrap_or(&0.0) * 100.0),
            ]);
        }
        result
            .scalar("nofail_minus_fail_pct", means[0] - means[1])
            .scalar("replenish_minus_fail_pct", means[2] - means[1])
            .table(
                "failure_scenarios",
                &[
                    "scenario",
                    "failures",
                    "replacements",
                    "min alive",
                    "mean coverage %",
                    "final coverage %",
                ],
                rows,
            )
            .note("takeaway: random failures degrade coverage smoothly — the same")
            .note("graceful, stake-proportional behaviour as Fig. 5's withdrawals,")
            .note("because interspersed ownership leaves no structural hole for a")
            .note("random loss to widen. A modest replenishment cadence holds the")
            .note("steady state; no coordination with other parties is needed.")
    }
}
