//! Ablation: interleaved vs clustered satellite ownership.
//!
//! The paper's §3.3 closes: coverage-optimal placement "naturally leads to
//! a constellation where satellites from multiple parties do not form a
//! cluster and are interspersed", and that this interspersion is what
//! makes withdrawal graceful. This study isolates that claim: same
//! constellation, same stakes, only the *assignment* of satellites to
//! parties differs — random interleaving vs contiguous orbital-plane
//! blocks.

use crate::expectations::{Comparator, Expectation};
use crate::experiment::{Experiment, ExperimentResult};
use crate::experiments::expect;
use crate::{fmt_dur, seeds, Context, Fidelity};
use leosim::montecarlo::{run_rng, run_samples, sample_indices};
use mpleo::party::{skewed_ratios, PartyKind};
use mpleo::registry::ConstellationRegistry;
use mpleo::robustness::withdrawal_loss;

/// See module docs.
pub struct AblationOwnership;

impl Experiment for AblationOwnership {
    fn id(&self) -> &'static str {
        "ablation_ownership"
    }

    fn title(&self) -> &'static str {
        "interleaved vs clustered ownership (largest of 5 parties withdraws)"
    }

    fn seeds(&self) -> Vec<u64> {
        vec![seeds::ABLATION_OWNERSHIP, seeds::ABLATION_OWNERSHIP_SHUFFLE]
    }

    fn params(&self, fidelity: &Fidelity) -> Vec<(String, String)> {
        vec![
            ("total_sats".into(), "500".into()),
            ("stakes".into(), "2:1:1:1:1".into()),
            ("runs".into(), fidelity.runs.to_string()),
        ]
    }

    fn expectations(&self) -> Vec<Expectation> {
        vec![expect(
            "clustered_minus_interleaved_pct",
            Comparator::Ge,
            0.0,
            1.5,
            "§3.3: interspersion makes withdrawal graceful; clustering opens plane-wide holes",
            false,
        )]
    }

    fn run(&self, ctx: &Context, fidelity: &Fidelity) -> ExperimentResult {
        let vt = ctx.city_table();
        let week_s = 7.0 * 86_400.0;
        let total = 500;
        let ratios = skewed_ratios(2.0, 4); // 2:1:1:1:1 over 500 sats

        let mut rows = Vec::new();
        let mut result = ExperimentResult::data();
        let mut means = Vec::new();
        for (label, key, shuffle) in [
            ("clustered (contiguous planes)", "clustered_loss_pct", false),
            ("interleaved (random)", "interleaved_loss_pct", true),
        ] {
            // Parallel runs on the shared pool, collected in run order.
            let losses = run_samples(seeds::ABLATION_OWNERSHIP, fidelity.runs, |rng, run| {
                let base = sample_indices(rng, vt.sat_count(), total);
                let reg = if shuffle {
                    let mut reg_rng = run_rng(seeds::ABLATION_OWNERSHIP_SHUFFLE, run as u64);
                    ConstellationRegistry::from_ratios(
                        total,
                        &ratios,
                        PartyKind::Country,
                        Some(&mut reg_rng),
                    )
                } else {
                    ConstellationRegistry::from_ratios(total, &ratios, PartyKind::Country, None)
                };
                let largest = reg.largest_party();
                let withdrawn: Vec<usize> = largest.satellites.iter().map(|&p| base[p]).collect();
                withdrawal_loss(&vt, &base, &withdrawn, &ctx.weights)
            });
            let mean_pct =
                losses.iter().map(|l| l.loss_pct_of_horizon).sum::<f64>() / losses.len() as f64;
            means.push(mean_pct);
            result = result.scalar(key, mean_pct);
            rows.push(vec![
                label.to_string(),
                format!("{mean_pct:.2}"),
                fmt_dur(mean_pct / 100.0 * week_s),
            ]);
        }
        result
            .scalar("clustered_minus_interleaved_pct", means[0] - means[1])
            .table(
                "ownership_layouts",
                &["ownership layout", "coverage loss %", "loss per week"],
                rows,
            )
            .note("note: the pool is sampled randomly, so 'contiguous' blocks are")
            .note("contiguous in *sample order*, which for a Walker pool means whole")
            .note("planes/shells — the clustered worst case the paper warns about.")
            .note("Interleaving spreads each party across orbital geometry, so one")
            .note("party's exit thins coverage evenly instead of opening plane-wide holes.")
    }
}
