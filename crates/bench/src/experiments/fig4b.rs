//! Figure 4b: impact of phase placement between two existing satellites.
//!
//! Paper protocol: 12 satellites in one plane (53 deg, 546 km), 30 deg
//! apart; add one satellite at each of 29 phase offsets (about 1 deg /
//! 120 km apart) between two originals. Headline: the midpoint (15 deg
//! from each neighbor) maximizes the coverage improvement.

use crate::expectations::{Comparator, Expectation};
use crate::experiment::{Experiment, ExperimentResult};
use crate::experiments::{expect, week_scale};
use crate::{fmt_dur, scenario_epoch, Context, Fidelity};
use mpleo::placement::phase_sweep;

/// See module docs.
pub struct Fig4b;

impl Experiment for Fig4b {
    fn id(&self) -> &'static str {
        "fig4b"
    }

    fn title(&self) -> &'static str {
        "coverage gain vs phase offset of the added satellite"
    }

    fn params(&self, _fidelity: &Fidelity) -> Vec<(String, String)> {
        vec![
            ("base".into(), "12 sats, one plane, 53 deg, 546 km".into()),
            ("offsets".into(), "1..=29 deg".into()),
        ]
    }

    fn expectations(&self) -> Vec<Expectation> {
        vec![
            expect(
                "best_offset_deg",
                Comparator::Within,
                15.0,
                4.0,
                "§3.3 Fig 4b: the midpoint (15°) maximizes the gain",
                true,
            ),
            expect(
                "edge_to_peak_ratio",
                Comparator::Le,
                0.5,
                0.25,
                "§3.3 Fig 4b: minimal gain nearest the existing satellites",
                true,
            ),
        ]
    }

    fn run(&self, ctx: &Context, _fidelity: &Fidelity) -> ExperimentResult {
        let points =
            phase_sweep(&ctx.sites, &ctx.weights, &ctx.grid, &ctx.config, scenario_epoch());
        let scale = week_scale(ctx.grid.duration_s());

        let best = points
            .iter()
            .max_by(|a, b| a.gain_s.partial_cmp(&b.gain_s).unwrap())
            .expect("sweep is non-empty");
        let mut rows = Vec::new();
        for p in &points {
            let marker =
                if (p.offset_deg - best.offset_deg).abs() < 1e-9 { " <-- max" } else { "" };
            rows.push(vec![
                format!("{:.0}", p.offset_deg),
                fmt_dur(p.gain_s * scale),
                format!("{:.1}{marker}", p.gain_s * scale / 60.0),
            ]);
        }
        let edge_gain = points[0].gain_s.min(points[points.len() - 1].gain_s);
        ExperimentResult::data()
            .scalar("best_offset_deg", best.offset_deg)
            .scalar("peak_gain_s_per_week", best.gain_s * scale)
            .scalar(
                "edge_to_peak_ratio",
                if best.gain_s > 0.0 { edge_gain / best.gain_s } else { f64::NAN },
            )
            .series("offset_deg", points.iter().map(|p| p.offset_deg).collect())
            .series("gain_s_per_week", points.iter().map(|p| p.gain_s * scale).collect())
            .table("phase_sweep", &["offset (deg)", "gain /wk", "gain (min)"], rows)
            .note(format!(
                "maximum at {:.0} deg offset (paper: 15 deg, the midpoint between",
                best.offset_deg
            ))
            .note("the two existing satellites — farthest from both).")
    }
}
