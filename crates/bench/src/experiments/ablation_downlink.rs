//! Ablation: downlink arbitration across shared ground stations.
//!
//! MP-LEO's ground segment is multi-party too: few stations, many
//! satellites, one satellite tracked per station at a time. This study
//! compares arbitration policies (the L2D2-flavored oldest-data-first vs
//! throughput-greedy vs naive fixed priority) on drain volume and data age
//! — the fairness question behind "how do satellite operators charge for
//! their services".

use crate::expectations::{Comparator, Expectation};
use crate::experiment::{Experiment, ExperimentResult};
use crate::experiments::expect;
use crate::{seeds, Context, Fidelity};
use leosim::montecarlo::{run_rng, sample_indices};
use mpleo::downlink::{simulate_downlink, DownlinkConfig, DownlinkPolicy};
use orbital::ground::GroundSite;

/// See module docs.
pub struct AblationDownlink;

fn sample_size(fidelity: &Fidelity) -> usize {
    if fidelity.full {
        60
    } else {
        30
    }
}

impl Experiment for AblationDownlink {
    fn id(&self) -> &'static str {
        "ablation_downlink"
    }

    fn title(&self) -> &'static str {
        "downlink arbitration policy (shared ground stations)"
    }

    fn seeds(&self) -> Vec<u64> {
        vec![seeds::ABLATION_DOWNLINK]
    }

    fn params(&self, fidelity: &Fidelity) -> Vec<(String, String)> {
        vec![
            ("sample".into(), sample_size(fidelity).to_string()),
            ("ground_stations".into(), "Taiwan, Germany, Chile".into()),
            ("arrival_bits_per_step".into(), "2e6".into()),
            ("drain_bits_per_step".into(), "100e6".into()),
        ]
    }

    fn expectations(&self) -> Vec<Expectation> {
        vec![expect(
            "fixed_minus_oldest_age_min",
            Comparator::Ge,
            0.0,
            5.0,
            "§3.2 ablation: oldest-data-first bounds data age vs naive fixed priority",
            false,
        )]
    }

    fn run(&self, ctx: &Context, fidelity: &Fidelity) -> ExperimentResult {
        let n = sample_size(fidelity);
        let mut rng = run_rng(seeds::ABLATION_DOWNLINK, 0);
        let idx = sample_indices(&mut rng, ctx.pool.len(), n);
        // Three ground stations on three continents.
        let gs = [
            GroundSite::from_degrees("GS-Taiwan", 24.8, 121.0),
            GroundSite::from_degrees("GS-Germany", 50.1, 8.7),
            GroundSite::from_degrees("GS-Chile", -33.4, -70.7),
        ];
        let vt = ctx.subset_table_config(&idx, &gs, &ctx.config.clone().with_mask_deg(10.0));
        let all: Vec<usize> = (0..n).collect();

        let mut rows = Vec::new();
        let mut result = ExperimentResult::data();
        let mut ages = Vec::new();
        for (label, key, policy) in [
            ("fixed priority (naive)", "age_min_fixed", DownlinkPolicy::FixedPriority),
            ("max backlog (throughput)", "age_min_maxbacklog", DownlinkPolicy::MaxBacklog),
            ("oldest data first (L2D2-flavored)", "age_min_oldest", DownlinkPolicy::OldestData),
        ] {
            let r = simulate_downlink(
                &vt,
                &all,
                &DownlinkConfig {
                    arrival_bits_per_step: 2.0e6,
                    drain_bits_per_step: 100.0e6,
                    policy,
                },
            );
            let total_drained: f64 = r.drained_bits.iter().sum();
            let worst_backlog = r.final_backlog_bits.iter().cloned().fold(0.0f64, f64::max);
            let age_min = r.mean_drain_age_steps * ctx.grid.step_s / 60.0;
            ages.push(age_min);
            result = result.scalar(key, age_min);
            rows.push(vec![
                label.to_string(),
                format!("{:.1}", total_drained / 8e9),
                format!("{age_min:.1}"),
                format!("{:.1}", worst_backlog / 8e6),
                format!("{:.1}", r.station_utilization * 100.0),
            ]);
        }
        result
            .scalar("fixed_minus_oldest_age_min", ages[0] - ages[2])
            .table(
                "arbitration_policies",
                &[
                    "policy",
                    "drained (GB)",
                    "mean data age (min)",
                    "worst backlog (MB)",
                    "station busy %",
                ],
                rows,
            )
            .note("takeaway: the naive fixed priority starves late-indexed")
            .note("satellites (worst backlog explodes); oldest-data-first trades a")
            .note("little throughput for bounded data age — the fairness policy a")
            .note("multi-party ground segment would adopt as its neutral default.")
    }
}
