//! Figure 6: coverage reduction vs stake skew when the largest party
//! withdraws.
//!
//! Paper protocol: 1000 satellites split across 11 parties with stake
//! ratio r:1:…:1 for r in 1..=10; the largest party withdraws;
//! population-weighted coverage over one week, 100 runs. Headline: equal
//! stakes (91 sats each) minimize the loss; at 10:1 (500 sats) the loss
//! grows to ~5.5% (10 h of no coverage per week) yet the network stays
//! serviceable.

use crate::expectations::{Comparator, Expectation};
use crate::experiment::{Experiment, ExperimentResult};
use crate::experiments::expect;
use crate::{fmt_dur, seeds, Context, Fidelity};
use mpleo::party::{allocate_by_ratio, skewed_ratios};
use mpleo::robustness::skewed_withdrawal_experiment;

/// See module docs.
pub struct Fig6;

impl Experiment for Fig6 {
    fn id(&self) -> &'static str {
        "fig6"
    }

    fn title(&self) -> &'static str {
        "coverage loss vs stake ratio (largest of 11 parties withdraws)"
    }

    fn seeds(&self) -> Vec<u64> {
        vec![seeds::FIG6]
    }

    fn params(&self, fidelity: &Fidelity) -> Vec<(String, String)> {
        vec![
            ("total_sats".into(), "1000".into()),
            ("parties".into(), "11".into()),
            ("ratios".into(), "r:1:...:1 for r in 1..=10".into()),
            ("runs".into(), fidelity.runs.to_string()),
        ]
    }

    fn expectations(&self) -> Vec<Expectation> {
        vec![
            expect(
                "loss_pct_r1",
                Comparator::Le,
                1.0,
                0.5,
                "§3.3 Fig 6: equal stakes minimize the loss",
                true,
            ),
            expect(
                "loss_pct_r10",
                Comparator::Within,
                5.5,
                3.0,
                "§3.3 Fig 6: ~5.5% loss (10 h/week) at 10:1, still serviceable",
                false,
            ),
            expect(
                "skew_monotone",
                Comparator::Ge,
                1.0,
                0.0,
                "§3.3 Fig 6: loss grows with stake skew (r=1 < r=5 < r=10)",
                true,
            ),
        ]
    }

    fn run(&self, ctx: &Context, fidelity: &Fidelity) -> ExperimentResult {
        let vt = ctx.city_table();
        let week_s = 7.0 * 86_400.0;

        let mut rows = Vec::new();
        let mut losses = Vec::new();
        let mut result = ExperimentResult::data();
        for r in 1..=10u32 {
            let agg = skewed_withdrawal_experiment(
                &vt,
                1000,
                r as f64,
                10,
                &ctx.weights,
                fidelity.runs,
                seeds::FIG6,
            );
            losses.push(agg.mean);
            if r == 1 || r == 5 || r == 10 {
                result = result.scalar(&format!("loss_pct_r{r}"), agg.mean);
            }
            let largest = allocate_by_ratio(1000, &skewed_ratios(r as f64, 10))[0];
            rows.push(vec![
                format!("{r}:1:...:1"),
                largest.to_string(),
                format!("{:.2}", agg.mean),
                format!("{:.2}", agg.std_dev),
                fmt_dur(agg.mean / 100.0 * week_s),
            ]);
        }
        let monotone = losses[0] < losses[4] && losses[4] < losses[9];
        result
            .scalar("skew_monotone", if monotone { 1.0 } else { 0.0 })
            .series("stake_ratio", (1..=10).map(|r| r as f64).collect())
            .series("loss_pct", losses)
            .table(
                "skewed_withdrawal",
                &["stake ratio", "largest party sats", "coverage loss %", "std", "loss per week"],
                rows,
            )
            .note("paper shape: loss grows with skew; ~5.5% (10 h/week) at 10:1,")
            .note("             still serviceable because the rest hold ~half the network.")
    }
}
