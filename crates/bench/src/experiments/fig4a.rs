//! Figure 4a: coverage gained by adding one random satellite to bases of
//! 1, 100, and 500 satellites.
//!
//! Paper protocol: population-weighted coverage over the 21 cities across
//! one week, 100 runs; each run samples the base and the added satellite
//! from the Starlink network. Headline: adding to a 1-satellite base gains
//! over 1 hour on average (max over 4 hours); gains shrink as the base
//! grows.

use crate::expectations::{Comparator, Expectation};
use crate::experiment::{Experiment, ExperimentResult};
use crate::experiments::{expect, week_scale};
use crate::{fmt_dur, seeds, Context, Fidelity};
use mpleo::placement::random_addition_experiment;

/// Base constellation sizes swept.
pub const BASES: [usize; 3] = [1, 100, 500];

/// See module docs.
pub struct Fig4a;

impl Experiment for Fig4a {
    fn id(&self) -> &'static str {
        "fig4a"
    }

    fn title(&self) -> &'static str {
        "marginal coverage of one added satellite vs base size"
    }

    fn seeds(&self) -> Vec<u64> {
        vec![seeds::FIG4A]
    }

    fn params(&self, fidelity: &Fidelity) -> Vec<(String, String)> {
        vec![
            ("bases".into(), format!("{BASES:?}")),
            ("runs".into(), fidelity.runs.to_string()),
            ("weighting".into(), "population, 21 cities".into()),
        ]
    }

    fn expectations(&self) -> Vec<Expectation> {
        vec![
            expect(
                "mean_gain_s_base1",
                Comparator::Ge,
                2400.0,
                1500.0,
                "§3.3 Fig 4a: >1 h mean weekly gain on a 1-satellite base",
                false,
            ),
            expect(
                "diminishing_ratio",
                Comparator::Ge,
                2.0,
                1.0,
                "§3.3 Fig 4a: gains clearly diminish from base 1 to base 500",
                true,
            ),
        ]
    }

    fn run(&self, ctx: &Context, fidelity: &Fidelity) -> ExperimentResult {
        let vt = ctx.city_table();
        // Scale gains to a one-week horizon so quick runs print
        // paper-comparable numbers.
        let scale = week_scale(ctx.grid.duration_s());
        let mut rows = Vec::new();
        let mut mean_series = Vec::new();
        let mut result = ExperimentResult::data();
        for &base in &BASES {
            let agg =
                random_addition_experiment(&vt, base, &ctx.weights, fidelity.runs, seeds::FIG4A);
            mean_series.push(agg.mean * scale);
            result = result.scalar(&format!("mean_gain_s_base{base}"), agg.mean * scale);
            rows.push(vec![
                base.to_string(),
                fmt_dur(agg.mean * scale),
                fmt_dur(agg.max * scale),
                fmt_dur(agg.min * scale),
                format!("{:.1}", agg.std_dev * scale / 60.0),
            ]);
        }
        let ratio =
            if mean_series[2] > 0.0 { mean_series[0] / mean_series[2] } else { f64::INFINITY };
        result
            .scalar("diminishing_ratio", ratio)
            .series("bases", BASES.iter().map(|&b| b as f64).collect())
            .series("mean_gain_s_per_week", mean_series)
            .table(
                "marginal_gain",
                &["base size", "mean gain /wk", "max gain /wk", "min gain /wk", "std (min)"],
                rows,
            )
            .note("paper shape: >1 h mean (max >4 h) on a 1-satellite base;")
            .note("             clearly diminishing at 100 and 500 satellites.")
    }
}
