//! Ablation: sensitivity of coverage to the elevation mask.
//!
//! The transparent bent-pipe design (paper §3.1) pushes all RF decisions
//! to the edges; the elevation mask is then the single link-layer knob the
//! constellation design depends on. This ablation re-runs the Fig. 2 style
//! experiment at several masks to show how the "satellites needed for
//! coverage" conclusion scales with it.

use crate::expectations::{Comparator, Expectation};
use crate::experiment::{Experiment, ExperimentResult};
use crate::experiments::expect;
use crate::{seeds, Context, Fidelity};
use leosim::coverage::{Aggregate, CoverageStats};
use leosim::montecarlo::{run_samples, sample_indices};

/// Elevation masks swept, degrees.
pub const MASKS: [f64; 3] = [10.0, 25.0, 40.0];
/// Constellation sizes swept.
pub const SIZES: [usize; 3] = [100, 500, 1000];

/// See module docs.
pub struct AblationElevation;

impl Experiment for AblationElevation {
    fn id(&self) -> &'static str {
        "ablation_elevation"
    }

    fn title(&self) -> &'static str {
        "coverage vs elevation mask (Taipei receiver)"
    }

    fn seeds(&self) -> Vec<u64> {
        vec![seeds::ABLATION_ELEVATION]
    }

    fn params(&self, fidelity: &Fidelity) -> Vec<(String, String)> {
        vec![
            ("masks_deg".into(), format!("{MASKS:?}")),
            ("sizes".into(), format!("{SIZES:?}")),
            ("runs".into(), fidelity.runs.to_string()),
        ]
    }

    fn expectations(&self) -> Vec<Expectation> {
        vec![expect(
            "mask_penalty_pct_1000",
            Comparator::Ge,
            5.0,
            3.0,
            "§3.1 ablation: a 40° mask needs far more satellites than 10° for the same availability",
            true,
        )]
    }

    fn run(&self, ctx: &Context, fidelity: &Fidelity) -> ExperimentResult {
        let taipei = [geodata::taipei()];
        let mut rows = Vec::new();
        let mut result = ExperimentResult::data();
        let mut coverage_series = Vec::new();
        for &mask in &MASKS {
            // Positions don't depend on the mask: one shared propagation
            // pass (via the context's ephemeris store) serves all three
            // masks.
            let cfg = ctx.config.clone().with_mask_deg(mask);
            let vt = ctx.table_for_config(&taipei, &cfg);
            for &size in &SIZES {
                // Parallel runs on the shared pool, ordered by run index.
                let unc = run_samples(seeds::ABLATION_ELEVATION, fidelity.runs, |rng, _| {
                    let subset = sample_indices(rng, vt.sat_count(), size);
                    let stats =
                        CoverageStats::from_bitset(&vt.coverage_union(&subset, 0), &vt.grid);
                    stats.uncovered_fraction * 100.0
                });
                let agg = Aggregate::from_samples(&unc);
                coverage_series.push(100.0 - agg.mean);
                if size == 1000 {
                    result = result
                        .scalar(&format!("coverage_pct_mask{mask:.0}_1000"), 100.0 - agg.mean);
                }
                rows.push(vec![
                    format!("{mask:.0}"),
                    size.to_string(),
                    format!("{:.2}", agg.mean),
                    format!("{:.2}", 100.0 - agg.mean),
                ]);
            }
        }
        let penalty = result.scalars.get("coverage_pct_mask10_1000").copied().unwrap_or(f64::NAN)
            - result.scalars.get("coverage_pct_mask40_1000").copied().unwrap_or(f64::NAN);
        result
            .scalar("mask_penalty_pct_1000", penalty)
            .series("coverage_pct", coverage_series)
            .table(
                "coverage_vs_mask",
                &["mask (deg)", "satellites", "no-coverage %", "coverage %"],
                rows,
            )
            .note("takeaway: the constellation size needed for a coverage target is")
            .note("strongly mask-dependent — a 40 deg mask needs several times the")
            .note("satellites of a 10 deg mask for the same availability.")
    }
}
