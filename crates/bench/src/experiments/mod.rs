//! The concrete experiments: one module per figure/ablation of the
//! paper's evaluation, each implementing [`crate::experiment::Experiment`].
//! The historical binaries under `src/bin/` are thin shims over these via
//! [`crate::runner::main_for`].

pub mod ablation_bootstrap;
pub mod ablation_churn_rate;
pub mod ablation_congestion;
pub mod ablation_downlink;
pub mod ablation_economics;
pub mod ablation_elevation;
pub mod ablation_failures;
pub mod ablation_isl;
pub mod ablation_latency;
pub mod ablation_maneuver;
pub mod ablation_ownership;
pub mod ablation_payload;
pub mod ablation_pricing;
pub mod ablation_qos;
pub mod ablation_traffic_mix;
pub mod churn_withdrawal;
pub mod fig1a;
pub mod fig2;
pub mod fig3;
pub mod fig4a;
pub mod fig4b;
pub mod fig4c;
pub mod fig5;
pub mod fig6;
pub mod traffic_diurnal;

use crate::expectations::{Comparator, Expectation};

/// Terse [`Expectation`] constructor used by the experiment modules.
pub(crate) fn expect(
    metric: &'static str,
    comparator: Comparator,
    target: f64,
    tol: f64,
    paper_ref: &'static str,
    quick_strict: bool,
) -> Expectation {
    Expectation { metric, comparator, target, tol, paper_ref, quick_strict }
}

/// Week-scaling factor: quick horizons report gains scaled to the paper's
/// one-week window so numbers stay paper-comparable.
pub(crate) fn week_scale(duration_s: f64) -> f64 {
    7.0 * 86_400.0 / duration_s
}
