//! Ablation: orbital congestion — shared vs independent constellations.
//!
//! The paper's §1: "an increase in the deployment of large constellations
//! will lead to increased orbital congestion, with higher risks of
//! collisions". The key physics: within one *coordinated* constellation
//! the closest approach between any two satellites is a design constant,
//! maintained by common station-keeping. Between *independent* co-altitude
//! constellations the relative RAAN/phase is uncontrolled — launch
//! dispersion and differential J2 drift walk it through arbitrary
//! configurations, so the closest cross-operator approach is a lottery
//! that must be re-drawn continuously.
//!
//! This study screens the coordinated shell once (its separation never
//! changes) and screens the independent overlay across a sweep of relative
//! drift states, reporting the distribution of the closest cross-operator
//! approach.

use crate::expectations::{Comparator, Expectation};
use crate::experiment::{Experiment, ExperimentResult};
use crate::experiments::expect;
use crate::{scenario_epoch, Context, Fidelity};
use orbital::conjunction::{screen_all_pairs, ScreeningConfig};
use orbital::constellation::{walker_delta, ShellSpec};
use orbital::kepler::ClassicalElements;

/// See module docs.
pub struct AblationCongestion;

fn window_s(fidelity: &Fidelity) -> f64 {
    if fidelity.full {
        12.0 * 3600.0
    } else {
        6.0 * 3600.0
    }
}

fn drift_states(fidelity: &Fidelity) -> usize {
    if fidelity.full {
        24
    } else {
        10
    }
}

impl Experiment for AblationCongestion {
    fn id(&self) -> &'static str {
        "ablation_congestion"
    }

    fn title(&self) -> &'static str {
        "orbital congestion, shared vs independent constellations"
    }

    fn params(&self, fidelity: &Fidelity) -> Vec<(String, String)> {
        vec![
            ("screening_window_h".into(), format!("{:.0}", window_s(fidelity) / 3600.0)),
            ("drift_states".into(), drift_states(fidelity).to_string()),
            ("shared_shell".into(), "12 planes x 10 sats, coordinated".into()),
            ("independent".into(), "4 operators x 30 sats, same band".into()),
        ]
    }

    fn expectations(&self) -> Vec<Expectation> {
        vec![
            expect(
                "shared_min_km",
                Comparator::Ge,
                50.0,
                20.0,
                "§1 ablation: a coordinated shell's closest approach is a large design constant",
                true,
            ),
            expect(
                "shared_minus_independent_worst_km",
                Comparator::Ge,
                0.0,
                10.0,
                "§1: uncoordinated overlays drift through far closer approaches",
                false,
            ),
        ]
    }

    fn run(&self, _ctx: &Context, fidelity: &Fidelity) -> ExperimentResult {
        let window = window_s(fidelity);
        let states = drift_states(fidelity);
        let epoch = scenario_epoch();
        let cfg = ScreeningConfig { threshold_km: 400.0, coarse_step_s: 20.0, radial_pad_km: 3.0 };

        // Shared: one coordinated 120-satellite Walker shell. Its internal
        // separations are locked by design + station-keeping.
        let shared_spec =
            ShellSpec { planes: 12, sats_per_plane: 10, phasing: 1, ..ShellSpec::starlink_like() };
        let shared: Vec<ClassicalElements> =
            walker_delta(&shared_spec, epoch).iter().map(|s| s.elements).collect();
        let shared_conj = screen_all_pairs(&shared, epoch, window, &cfg);
        // No pair inside the screening threshold means the closest approach
        // is at least threshold_km; censor there so scalars stay finite
        // (non-finite floats don't survive the JSON result).
        let shared_min =
            shared_conj.first().map(|c| c.miss_distance_km).unwrap_or(cfg.threshold_km);

        // Independent: four operators, 30 satellites each, same altitude.
        // Their *relative* RAAN/phase drifts; sample that drift.
        let mut closest_per_state = Vec::new();
        for state in 0..states {
            let f = state as f64;
            let mut all: Vec<(usize, ClassicalElements)> = Vec::new();
            for (op, inc) in [(0usize, 53.05), (1, 52.95), (2, 53.10), (3, 53.00)] {
                let spec = ShellSpec {
                    name: format!("OP{op}"),
                    planes: 3,
                    sats_per_plane: 10,
                    phasing: 1 + op as u32,
                    // Relative drift state: each operator's node/phase
                    // walks at its own rate; emulate with state-dependent
                    // offsets.
                    raan_offset_deg: 11.0 * op as f64 + f * (1.7 + 0.9 * op as f64),
                    inclination_deg: inc,
                    altitude_km: 550.0,
                };
                all.extend(walker_delta(&spec, epoch).iter().map(|s| (op, s.elements)));
            }
            let els: Vec<ClassicalElements> = all.iter().map(|(_, e)| *e).collect();
            let conj = screen_all_pairs(&els, epoch, window, &cfg);
            // Closest *cross-operator* approach in this drift state.
            let min_cross = conj
                .iter()
                .filter(|c| all[c.sat_a].0 != all[c.sat_b].0)
                .map(|c| c.miss_distance_km)
                .fold(cfg.threshold_km, f64::min);
            closest_per_state.push(min_cross);
        }
        closest_per_state.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let worst = closest_per_state[0];
        let median = closest_per_state[closest_per_state.len() / 2];
        let below_25 = closest_per_state.iter().filter(|&&d| d < 25.0).count();

        let rows = vec![
            vec![
                "shared (coordinated Walker, 120 sats)".into(),
                format!("{shared_min:.1} (design constant)"),
                format!("{shared_min:.1}"),
                "0".into(),
            ],
            vec![
                "independent (4 ops x 30 sats, same band)".into(),
                format!("{worst:.1}"),
                format!("{median:.1}"),
                format!("{below_25}/{states}"),
            ],
        ];
        ExperimentResult::data()
            .scalar("shared_min_km", shared_min)
            .scalar("independent_worst_km", worst)
            .scalar("independent_median_km", median)
            .scalar("states_below_25km", below_25 as f64)
            .scalar("shared_minus_independent_worst_km", shared_min - worst)
            .series("closest_cross_operator_km", closest_per_state)
            .table(
                "congestion",
                &[
                    "scenario",
                    "worst closest approach (km)",
                    "median (km)",
                    "states with <25 km pass",
                ],
                rows,
            )
            .note("takeaway: the coordinated shell's closest approach is fixed by")
            .note("design; the uncoordinated overlay's drifts through configurations")
            .note("with passes an order of magnitude closer — each needing screening")
            .note("and avoidance maneuvers, forever. Sharing one constellation removes")
            .note("the cross-operator lottery entirely (the paper's sustainability case).")
    }
}
