//! The experiment registry: the single list of every figure/ablation the
//! harness can run, keyed by stable id. The 25 `src/bin/` shims, the
//! `suite` binary, and the `mpleo experiments` CLI subcommand all resolve
//! through here.

use crate::experiment::Experiment;
use crate::experiments::*;

/// Every registered experiment, in EXPERIMENTS.md order: figures first,
/// then the ablations.
pub static ALL: [&dyn Experiment; 25] = [
    &fig1a::Fig1a,
    &fig2::Fig2,
    &fig3::Fig3,
    &fig4a::Fig4a,
    &fig4b::Fig4b,
    &fig4c::Fig4c,
    &fig5::Fig5,
    &fig6::Fig6,
    &ablation_elevation::AblationElevation,
    &ablation_isl::AblationIsl,
    &ablation_pricing::AblationPricing,
    &ablation_latency::AblationLatency,
    &ablation_congestion::AblationCongestion,
    &ablation_bootstrap::AblationBootstrap,
    &ablation_ownership::AblationOwnership,
    &ablation_maneuver::AblationManeuver,
    &ablation_payload::AblationPayload,
    &ablation_qos::AblationQos,
    &ablation_failures::AblationFailures,
    &ablation_downlink::AblationDownlink,
    &ablation_economics::AblationEconomics,
    &traffic_diurnal::TrafficDiurnal,
    &ablation_traffic_mix::AblationTrafficMix,
    &churn_withdrawal::ChurnWithdrawal,
    &ablation_churn_rate::AblationChurnRate,
];

/// All experiment ids, registry order.
pub fn ids() -> Vec<&'static str> {
    ALL.iter().map(|e| e.id()).collect()
}

/// Look an experiment up by id.
pub fn get(id: &str) -> Option<&'static dyn Experiment> {
    ALL.iter().find(|e| e.id() == id).copied()
}

/// Resolve `--only` / `--skip` filters into the selected experiments
/// (registry order preserved). Unknown ids are an error naming the known
/// set.
pub fn select(only: &[String], skip: &[String]) -> Result<Vec<&'static dyn Experiment>, String> {
    for id in only.iter().chain(skip.iter()) {
        if get(id).is_none() {
            return Err(format!("unknown experiment '{}'; known ids: {}", id, ids().join(", ")));
        }
    }
    Ok(ALL
        .iter()
        .filter(|e| only.is_empty() || only.iter().any(|id| id == e.id()))
        .filter(|e| !skip.iter().any(|id| id == e.id()))
        .copied()
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    #[test]
    fn registry_has_all_25_experiments_with_distinct_ids() {
        assert_eq!(ALL.len(), 25);
        let unique: BTreeSet<&str> = ids().into_iter().collect();
        assert_eq!(unique.len(), 25, "duplicate experiment ids");
        // Every historical binary name is present.
        for id in [
            "fig1a",
            "fig2",
            "fig3",
            "fig4a",
            "fig4b",
            "fig4c",
            "fig5",
            "fig6",
            "ablation_elevation",
            "ablation_isl",
            "ablation_pricing",
            "ablation_latency",
            "ablation_congestion",
            "ablation_bootstrap",
            "ablation_ownership",
            "ablation_maneuver",
            "ablation_payload",
            "ablation_qos",
            "ablation_failures",
            "ablation_downlink",
            "ablation_economics",
            "traffic_diurnal",
            "ablation_traffic_mix",
            "churn_withdrawal",
            "ablation_churn_rate",
        ] {
            assert!(get(id).is_some(), "missing experiment {id}");
        }
    }

    #[test]
    fn select_filters() {
        let sel = select(&[], &[]).unwrap();
        assert_eq!(sel.len(), 25);
        let sel = select(&["fig2".into(), "fig3".into()], &[]).unwrap();
        assert_eq!(sel.iter().map(|e| e.id()).collect::<Vec<_>>(), vec!["fig2", "fig3"]);
        let sel = select(&["fig2".into(), "fig3".into()], &["fig2".into()]).unwrap();
        assert_eq!(sel.iter().map(|e| e.id()).collect::<Vec<_>>(), vec!["fig3"]);
        assert!(select(&["figZZ".into()], &[]).err().unwrap().contains("figZZ"));
    }

    #[test]
    fn every_experiment_declares_params_and_valid_expectation_tolerances() {
        let f = crate::Fidelity::quick();
        for e in ALL {
            assert!(!e.params(&f).is_empty(), "{} has no params", e.id());
            for exp in e.expectations() {
                assert!(exp.tol >= 0.0, "{}: negative tol on {}", e.id(), exp.metric);
                assert!(!exp.paper_ref.is_empty(), "{}: empty paper_ref", e.id());
            }
        }
    }
}
