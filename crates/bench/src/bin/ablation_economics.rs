//! Ablation: the capital cost of coverage — go-it-alone vs MP-LEO.
//!
//! Converts the Fig. 2 coverage curve into 10-year dollars using public
//! Starlink-class cost figures, pricing the paper's §1 claim ("investments
//! between 10-30 billion dollars") and its §2 punchline (a 50-satellite
//! contribution buys 1000-satellite coverage).

use leosim::coverage::CoverageStats;
use leosim::montecarlo::{run_rng, sample_indices};
use mpleo::economics::{go_it_alone, mp_leo_share, CostModel};
use mpleo_bench::{print_table, Context, Fidelity};

fn main() {
    let fidelity = Fidelity::from_env();
    fidelity.banner("Ablation", "cost of coverage: go-it-alone vs MP-LEO share (Taipei)");

    // Measure the size -> availability curve (Fig. 2's data).
    let ctx = Context::new(&fidelity);
    let taipei = [geodata::taipei()];
    let vt = ctx.table_for(&taipei);
    let sizes = [10usize, 50, 100, 200, 500, 1000, 2000];
    let mut curve = Vec::new();
    for &size in &sizes {
        let mut acc = 0.0;
        for run in 0..fidelity.runs {
            let mut rng = run_rng(0xABE, run as u64);
            let subset = sample_indices(&mut rng, vt.sat_count(), size);
            acc += CoverageStats::from_bitset(&vt.coverage_union(&subset, 0), &vt.grid).covered_fraction;
        }
        curve.push((size, acc / fidelity.runs as f64));
    }

    let model = CostModel::default();
    println!(
        "cost model: ${:.1}M sat + ${:.1}M launch, ${:.2}M/yr ops, {:.0}-yr life",
        model.sat_capex_musd, model.launch_per_sat_musd, model.annual_ops_per_sat_musd, model.design_life_years
    );
    println!(
        "full-constellation check: 4400 sats over 10 years = ${:.1}B (paper: $10-30B)\n",
        model.total_cost_musd(4400, 10.0) / 1000.0
    );

    let mut rows = Vec::new();
    for &target in &[0.9f64, 0.99, 0.995] {
        let alone = go_it_alone(&curve, target, &model);
        let shared = mp_leo_share(&curve, target, 11, &model);
        match (alone, shared) {
            (Some(a), Some(s)) => rows.push(vec![
                format!("{:.1}%", target * 100.0),
                a.own_sats.to_string(),
                format!("{:.2}", a.cost_10yr_musd / 1000.0),
                s.own_sats.to_string(),
                format!("{:.2}", s.cost_10yr_musd / 1000.0),
                format!("{:.1}x", a.cost_10yr_musd / s.cost_10yr_musd),
            ]),
            _ => rows.push(vec![
                format!("{:.1}%", target * 100.0),
                "unreachable at sampled sizes".into(),
                "-".into(),
                "-".into(),
                "-".into(),
                "-".into(),
            ]),
        }
    }
    print_table(
        &[
            "availability target",
            "alone: sats",
            "alone: 10-yr $B",
            "MP-LEO (11 parties): sats",
            "MP-LEO: 10-yr $B",
            "saving",
        ],
        &rows,
    );
    println!("\ntakeaway: the coverage a party needs costs ~11x less as an MP-LEO");
    println!("share, because the curve's steep region (Fig. 2) is paid once and");
    println!("split — the paper's economic case in dollars.");
}
