//! Thin shim: the implementation lives in
//! `mpleo_bench::experiments::ablation_economics`; this binary is kept for CLI
//! compatibility. Prefer `--bin suite --only ablation_economics` (or `mpleo
//! experiments`) to run several experiments over one shared context.

fn main() {
    mpleo_bench::runner::main_for("ablation_economics");
}
