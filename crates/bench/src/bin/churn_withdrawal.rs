//! Thin shim: the implementation lives in
//! `mpleo_bench::experiments::churn_withdrawal`; this binary is kept for
//! CLI compatibility. Prefer `--bin suite --only churn_withdrawal` (or
//! `mpleo experiments`) to run several experiments over one shared
//! context.

fn main() {
    mpleo_bench::runner::main_for("churn_withdrawal");
}
