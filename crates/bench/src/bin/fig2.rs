//! Figure 2: percentage of time *without* coverage vs constellation size,
//! for a receiver in Taipei.
//!
//! Paper protocol: coverage gap over one week, averaged over 100 runs; each
//! run randomly samples N satellites from the Starlink network. Headline
//! numbers: >50% uncovered at 100 satellites (with gaps over an hour);
//! >=99.5% coverage needs ~1000 satellites.

use leosim::coverage::{Aggregate, CoverageStats};
use leosim::montecarlo::{run_rng, sample_indices};
use leosim::visibility::VisibilityTable;
use mpleo_bench::{fmt_dur, print_table, Context, Fidelity};

fn main() {
    let fidelity = Fidelity::from_env();
    fidelity.banner("Fig 2", "time without coverage vs number of satellites (Taipei)");

    let ctx = Context::new(&fidelity);
    let taipei = [geodata::taipei()];
    let vt = ctx.table_for(&taipei);
    run(&vt, &fidelity);
}

fn run(vt: &VisibilityTable, fidelity: &Fidelity) {
    let sizes = [10usize, 50, 100, 200, 500, 1000, 2000];
    let n = vt.sat_count();
    let mut rows = Vec::new();
    for &size in &sizes {
        let mut uncovered = Vec::with_capacity(fidelity.runs);
        let mut max_gaps = Vec::with_capacity(fidelity.runs);
        for run in 0..fidelity.runs {
            let mut rng = run_rng(0xF162, run as u64);
            let subset = sample_indices(&mut rng, n, size);
            let cov = vt.coverage_union(&subset, 0);
            let stats = CoverageStats::from_bitset(&cov, &vt.grid);
            uncovered.push(stats.uncovered_fraction * 100.0);
            max_gaps.push(stats.max_gap_s);
        }
        let unc = Aggregate::from_samples(&uncovered);
        let gap = Aggregate::from_samples(&max_gaps);
        rows.push(vec![
            size.to_string(),
            format!("{:.2}", unc.mean),
            format!("{:.2}", unc.std_dev),
            fmt_dur(gap.mean),
            format!("{:.3}", 100.0 - unc.mean),
        ]);
    }
    print_table(
        &["satellites", "no-coverage %", "std", "mean max gap", "coverage %"],
        &rows,
    );
    println!("\npaper shape: >50% uncovered @100 sats (gaps over an hour);");
    println!("             >=99.5% coverage reached around 1000 sats.");
}
