//! Ablation: interleaved vs clustered satellite ownership.
//!
//! The paper's §3.3 closes: coverage-optimal placement "naturally leads to
//! a constellation where satellites from multiple parties do not form a
//! cluster and are interspersed", and that this interspersion is what makes
//! withdrawal graceful. This study isolates that claim: same constellation,
//! same stakes, only the *assignment* of satellites to parties differs —
//! random interleaving vs contiguous orbital-plane blocks.

use leosim::montecarlo::{run_rng, sample_indices};
use mpleo::party::{skewed_ratios, PartyKind};
use mpleo::registry::ConstellationRegistry;
use mpleo::robustness::withdrawal_loss;
use mpleo_bench::{fmt_dur, print_table, Context, Fidelity};

fn main() {
    let fidelity = Fidelity::from_env();
    fidelity.banner("Ablation", "interleaved vs clustered ownership (largest of 5 parties withdraws)");

    let ctx = Context::new(&fidelity);
    println!("computing pool visibility table ({} sats x 21 cities)...", ctx.pool.len());
    let vt = ctx.city_table();
    let week_s = 7.0 * 86_400.0;
    let total = 500;
    let ratios = skewed_ratios(2.0, 4); // 2:1:1:1:1 over 500 sats

    let mut rows = Vec::new();
    for (label, shuffle) in [("clustered (contiguous planes)", false), ("interleaved (random)", true)] {
        let mut losses = Vec::new();
        for run in 0..fidelity.runs {
            let mut rng = run_rng(0xAB6, run as u64);
            let base = sample_indices(&mut rng, vt.sat_count(), total);
            let reg = if shuffle {
                let mut reg_rng = run_rng(0xAB6 ^ 0xFF, run as u64);
                ConstellationRegistry::from_ratios(total, &ratios, PartyKind::Country, Some(&mut reg_rng))
            } else {
                ConstellationRegistry::from_ratios(total, &ratios, PartyKind::Country, None)
            };
            let largest = reg.largest_party();
            let withdrawn: Vec<usize> = largest.satellites.iter().map(|&p| base[p]).collect();
            losses.push(withdrawal_loss(&vt, &base, &withdrawn, &ctx.weights));
        }
        let mean_pct = losses.iter().map(|l| l.loss_pct_of_horizon).sum::<f64>() / losses.len() as f64;
        rows.push(vec![
            label.to_string(),
            format!("{mean_pct:.2}"),
            fmt_dur(mean_pct / 100.0 * week_s),
        ]);
    }
    print_table(&["ownership layout", "coverage loss %", "loss per week"], &rows);
    println!("\nnote: the pool is sampled randomly, so 'contiguous' blocks are");
    println!("contiguous in *sample order*, which for a Walker pool means whole");
    println!("planes/shells — the clustered worst case the paper warns about.");
    println!("Interleaving spreads each party across orbital geometry, so one");
    println!("party's exit thins coverage evenly instead of opening plane-wide holes.");
}
