//! Figure 4a: coverage gained by adding one random satellite to bases of
//! 1, 100, and 500 satellites.
//!
//! Paper protocol: population-weighted coverage over the 21 cities across
//! one week, 100 runs; each run samples the base and the added satellite
//! from the Starlink network. Headline: adding to a 1-satellite base gains
//! over 1 hour on average (max over 4 hours); gains shrink as the base
//! grows.

use mpleo::placement::random_addition_experiment;
use mpleo_bench::{fmt_dur, print_table, Context, Fidelity};

fn main() {
    let fidelity = Fidelity::from_env();
    fidelity.banner("Fig 4a", "marginal coverage of one added satellite vs base size");

    let ctx = Context::new(&fidelity);
    println!("computing pool visibility table ({} sats x 21 cities)...", ctx.pool.len());
    let vt = ctx.city_table();

    // Scale gains to a one-week horizon so quick runs print paper-comparable
    // numbers.
    let week_scale = 7.0 * 86_400.0 / ctx.grid.duration_s();
    let mut rows = Vec::new();
    for &base in &[1usize, 100, 500] {
        let agg = random_addition_experiment(&vt, base, &ctx.weights, fidelity.runs, 0xF164A);
        rows.push(vec![
            base.to_string(),
            fmt_dur(agg.mean * week_scale),
            fmt_dur(agg.max * week_scale),
            fmt_dur(agg.min * week_scale),
            format!("{:.1}", agg.std_dev * week_scale / 60.0),
        ]);
    }
    print_table(
        &["base size", "mean gain /wk", "max gain /wk", "min gain /wk", "std (min)"],
        &rows,
    );
    println!("\npaper shape: >1 h mean (max >4 h) on a 1-satellite base;");
    println!("             clearly diminishing at 100 and 500 satellites.");
}
