//! Ablation: coverage gain per unit of propellant — the economics beneath
//! Fig. 4c.
//!
//! Fig. 4c says inclination diversity buys the most coverage; this study
//! adds what each option *costs* to reach from a shared launch (delta-v and
//! propellant fraction), turning the coverage ranking into a value-per-cost
//! ranking a profit-seeking participant would actually use.

use mpleo::placement::category_study;
use mpleo_bench::{fmt_dur, print_table, Context, Fidelity, scenario_epoch};
use orbital::maneuver::{hohmann, phasing, plane_change};

fn main() {
    let fidelity = Fidelity::from_env();
    fidelity.banner("Ablation", "coverage per delta-v across placement categories");

    let ctx = Context::new(&fidelity);
    let results = category_study(&ctx.sites, &ctx.weights, &ctx.grid, &ctx.config, scenario_epoch());
    let week_scale = 7.0 * 86_400.0 / ctx.grid.duration_s();

    // Costs to reach each slot from the base's orbit (53 deg, 546 km,
    // phase 0) after rideshare deployment there.
    let costs = [
        plane_change(546.0, 10f64.to_radians()),       // 53 -> 43 deg
        hohmann(546.0, 600.0),                         // +54 km
        phasing(546.0, 45f64.to_radians(), 30),        // 45 deg slot shift
    ];
    let isp = 1500.0; // electric propulsion

    let mut rows = Vec::new();
    for (r, cost) in results.iter().zip(costs.iter()) {
        let gain_min = r.gain_s * week_scale / 60.0;
        let value = if cost.delta_v_km_s > 1e-6 { gain_min / (cost.delta_v_km_s * 1000.0) } else { f64::INFINITY };
        rows.push(vec![
            r.category.label().to_string(),
            format!("{gain_min:.0}"),
            format!("{:.0}", cost.delta_v_km_s * 1000.0),
            format!("{:.1}", cost.propellant_fraction(isp) * 100.0),
            fmt_dur(cost.duration_s),
            format!("{value:.3}"),
        ]);
    }
    print_table(
        &[
            "category",
            "gain (min/wk)",
            "delta-v (m/s)",
            "propellant % (isp 1500)",
            "maneuver time",
            "min gained per m/s",
        ],
        &rows,
    );
    println!("\ntakeaway: inclination wins Fig. 4c's coverage race but loses the");
    println!("value race by orders of magnitude — which is why real participants");
    println!("buy inclination diversity at *launch* (a different rideshare), and");
    println!("use on-orbit propellant only for phase/altitude separation.");
}
