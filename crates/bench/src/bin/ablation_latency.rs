//! Ablation: LEO bent-pipe latency vs the geostationary alternative.
//!
//! The paper's §2 dismisses GEO because its altitude means "orders of
//! magnitude degradation in network latency (second-level)". This study
//! measures the actual bent-pipe delay distribution through the MP-LEO
//! constellation and compares it with the closed-form GEO path.

use leosim::latency::{bentpipe_latency_from_store, geo_latency_ms};
use leosim::montecarlo::{run_rng, sample_indices};
use mpleo_bench::{print_table, Context, Fidelity};
use orbital::ground::GroundSite;

fn main() {
    let fidelity = Fidelity::from_env();
    fidelity.banner("Ablation", "LEO bent-pipe latency vs GEO (one-way)");

    let ctx = Context::new(&fidelity);
    let sample = if fidelity.full { 600 } else { 200 };
    let mut rng = run_rng(0xAB4, 0);
    let idx = sample_indices(&mut rng, ctx.pool.len(), sample);
    let store = ctx.subset_ephemeris(&idx);

    let terminal = GroundSite::from_degrees("Taipei", 25.03, 121.56);
    let gs = GroundSite::from_degrees("Kaohsiung-GS", 22.63, 120.30);
    let series = bentpipe_latency_from_store(&store, &terminal, &gs, &ctx.config);

    let mut rows = Vec::new();
    rows.push(vec![
        format!("LEO bent pipe ({sample} sats)"),
        fmt(series.mean_ms()),
        fmt(series.percentile_ms(0.5)),
        fmt(series.percentile_ms(0.99)),
        format!("{:.1}", series.availability() * 100.0),
    ]);
    // GEO: terminal and GS are ~a few hundred km from the sub-satellite
    // point in the best case; also show a poorly placed case.
    let geo_best = geo_latency_ms(500.0, 500.0);
    let geo_worst = geo_latency_ms(6000.0, 6000.0);
    rows.push(vec![
        "GEO bent pipe (best slot)".into(),
        format!("{geo_best:.1}"),
        format!("{geo_best:.1}"),
        format!("{geo_best:.1}"),
        "100.0".into(),
    ]);
    rows.push(vec![
        "GEO bent pipe (edge of footprint)".into(),
        format!("{geo_worst:.1}"),
        format!("{geo_worst:.1}"),
        format!("{geo_worst:.1}"),
        "100.0".into(),
    ]);
    print_table(
        &["path", "mean (ms)", "p50 (ms)", "p99 (ms)", "availability %"],
        &rows,
    );
    println!(
        "\nLEO one-way delay is ~{:.0} ms vs GEO's ~{:.0} ms — {}x; a",
        series.mean_ms().unwrap_or(0.0),
        geo_best,
        (geo_best / series.mean_ms().unwrap_or(1.0)).round()
    );
    println!("request/response over GEO costs ~0.5 s, the paper's 'second-level'.");
}

fn fmt(v: Option<f64>) -> String {
    v.map(|x| format!("{x:.1}")).unwrap_or_else(|| "-".into())
}
