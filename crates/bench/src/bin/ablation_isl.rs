//! Ablation: bent-pipe vs inter-satellite-link (ISL) relay connectivity.
//!
//! The paper's design omits ISLs to keep satellites simple (§3.1) and lists
//! them as an open question (§4). This ablation quantifies what the
//! omission costs: terminal connectivity under the transparent bent pipe
//! (terminal and ground station must see the *same* satellite) vs an
//! ISL-relay design where traffic may hop between satellites to reach a
//! ground station.

use leosim::bentpipe::{bentpipe_connectivity, isl_connectivity_from_store};
use leosim::montecarlo::{run_rng, sample_indices};
use mpleo_bench::{print_table, Context, Fidelity};
use orbital::ground::GroundSite;

fn main() {
    let fidelity = Fidelity::from_env();
    fidelity.banner("Ablation", "bent-pipe vs ISL relay connectivity");

    let ctx = Context::new(&fidelity);
    // A remote terminal (Tonga — the paper's §1 disaster scenario) with the
    // operator's only ground station in Sydney.
    let terminal = [GroundSite::from_degrees("Tonga", -21.13, -175.2)];
    let gs = [GroundSite::from_degrees("Sydney-GS", -33.87, 151.21)];

    let sample = if fidelity.full { 400 } else { 150 };
    let mut rng = run_rng(0xAB2, 0);
    let idx = sample_indices(&mut rng, ctx.pool.len(), sample);
    // One copied ephemeris slice serves the visibility tables and both ISL
    // proximity graphs — the pool is propagated once for all four rows.
    let store = ctx.subset_ephemeris(&idx);

    let vt_t = ctx.subset_table(&idx, &terminal);
    let vt_g = ctx.subset_table(&idx, &gs);
    let plain: Vec<usize> = (0..idx.len()).collect();
    let visibility = vt_t.coverage_union(&plain, 0).fraction_ones();

    let bp = bentpipe_connectivity(&vt_t, &vt_g);
    let isl1 = isl_connectivity_from_store(&store, &terminal, &gs, &ctx.config, 3000.0, 1);
    let isl4 = isl_connectivity_from_store(&store, &terminal, &gs, &ctx.config, 3000.0, 4);

    let rows = vec![
        vec!["satellite visibility (upper bound)".into(), pct(visibility)],
        vec!["bent-pipe (no ISL)".into(), pct(bp[0].connected.fraction_ones())],
        vec!["ISL relay, 1 hop".into(), pct(isl1[0].connected.fraction_ones())],
        vec!["ISL relay, 4 hops".into(), pct(isl4[0].connected.fraction_ones())],
    ];
    print_table(&["architecture", "terminal connectivity %"], &rows);
    println!("\ntakeaway: the bent pipe pays a connectivity penalty whenever the");
    println!("terminal is far from the operator's ground stations; each ISL hop");
    println!("recovers a slice of the raw-visibility ceiling, at satellite-");
    println!("complexity cost — or deploy an in-region ground station instead.");
}

fn pct(f: f64) -> String {
    format!("{:.2}", f * 100.0)
}
