//! Thin shim: the implementation lives in
//! `mpleo_bench::experiments::ablation_churn_rate`; this binary is kept
//! for CLI compatibility. Prefer `--bin suite --only ablation_churn_rate`
//! (or `mpleo experiments`) to run several experiments over one shared
//! context.

fn main() {
    mpleo_bench::runner::main_for("ablation_churn_rate");
}
