//! Figure 4c: impact of varying inclination, altitude, and phase.
//!
//! Paper protocol: base of four Starlink-like satellites (53 deg, 546 km,
//! 90 deg apart in one plane); add one satellite from each of three
//! categories: (1) different inclination (43 deg), (2) same plane/phase but
//! different altitude, (3) same plane but different phase. Headline:
//! different inclination wins (~+1 h 11 m over a week); the other two still
//! gain over 30 minutes.

use mpleo::placement::category_study;
use mpleo_bench::{fmt_dur, print_table, Context, Fidelity, scenario_epoch};

fn main() {
    let fidelity = Fidelity::from_env();
    fidelity.banner("Fig 4c", "coverage gain by candidate category (4-satellite base)");

    let ctx = Context::new(&fidelity);
    let results = category_study(&ctx.sites, &ctx.weights, &ctx.grid, &ctx.config, scenario_epoch());
    let week_scale = 7.0 * 86_400.0 / ctx.grid.duration_s();

    let mut rows = Vec::new();
    for r in &results {
        rows.push(vec![
            r.category.label().to_string(),
            fmt_dur(r.gain_s * week_scale),
            format!("{:.1}", r.gain_s * week_scale / 60.0),
        ]);
    }
    print_table(&["category", "gain /wk", "gain (min)"], &rows);
    println!("\npaper shape: different inclination highest (~1 h 11 m);");
    println!("             different altitude and phase both gain > 30 min.");
}
