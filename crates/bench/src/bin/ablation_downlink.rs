//! Ablation: downlink arbitration across shared ground stations.
//!
//! MP-LEO's ground segment is multi-party too: few stations, many
//! satellites, one satellite tracked per station at a time. This study
//! compares arbitration policies (the L2D2-flavored oldest-data-first vs
//! throughput-greedy vs naive fixed priority) on drain volume and data age
//! — the fairness question behind "how do satellite operators charge for
//! their services".

use leosim::montecarlo::{run_rng, sample_indices};
use mpleo::downlink::{simulate_downlink, DownlinkConfig, DownlinkPolicy};
use mpleo_bench::{print_table, Context, Fidelity};
use orbital::ground::GroundSite;

fn main() {
    let fidelity = Fidelity::from_env();
    fidelity.banner("Ablation", "downlink arbitration policy (shared ground stations)");

    let ctx = Context::new(&fidelity);
    let n = if fidelity.full { 60 } else { 30 };
    let mut rng = run_rng(0xABA, 0);
    let idx = sample_indices(&mut rng, ctx.pool.len(), n);
    // Three ground stations on three continents.
    let gs = [
        GroundSite::from_degrees("GS-Taiwan", 24.8, 121.0),
        GroundSite::from_degrees("GS-Germany", 50.1, 8.7),
        GroundSite::from_degrees("GS-Chile", -33.4, -70.7),
    ];
    let vt = ctx.subset_table_config(&idx, &gs, &ctx.config.clone().with_mask_deg(10.0));
    let all: Vec<usize> = (0..n).collect();

    let mut rows = Vec::new();
    for (label, policy) in [
        ("fixed priority (naive)", DownlinkPolicy::FixedPriority),
        ("max backlog (throughput)", DownlinkPolicy::MaxBacklog),
        ("oldest data first (L2D2-flavored)", DownlinkPolicy::OldestData),
    ] {
        let r = simulate_downlink(&vt, &all, &DownlinkConfig {
            arrival_bits_per_step: 2.0e6,
            drain_bits_per_step: 100.0e6,
            policy,
        });
        let total_drained: f64 = r.drained_bits.iter().sum();
        let worst_backlog = r.final_backlog_bits.iter().cloned().fold(0.0f64, f64::max);
        rows.push(vec![
            label.to_string(),
            format!("{:.1}", total_drained / 8e9),
            format!("{:.1}", r.mean_drain_age_steps * ctx.grid.step_s / 60.0),
            format!("{:.1}", worst_backlog / 8e6),
            format!("{:.1}", r.station_utilization * 100.0),
        ]);
    }
    print_table(
        &[
            "policy",
            "drained (GB)",
            "mean data age (min)",
            "worst backlog (MB)",
            "station busy %",
        ],
        &rows,
    );
    println!("\ntakeaway: the naive fixed priority starves late-indexed");
    println!("satellites (worst backlog explodes); oldest-data-first trades a");
    println!("little throughput for bounded data age — the fairness policy a");
    println!("multi-party ground segment would adopt as its neutral default.");
}
