//! Ablation: stochastic satellite failures and replenishment.
//!
//! Withdrawals (Figs. 5/6) are adversarial; failures are the everyday case
//! the paper also demands robustness against ("How do we deal with
//! satellite failures?", §1). This study runs an exponential-lifetime
//! failure process over the constellation and compares coverage with and
//! without a replenishment launch cadence.

use leosim::montecarlo::{run_rng, sample_indices};
use mpleo::failures::{simulate_failures, FailureModel};
use mpleo_bench::{print_table, Context, Fidelity};

fn main() {
    let fidelity = Fidelity::from_env();
    fidelity.banner("Ablation", "failure process + replenishment (Taipei coverage)");

    let ctx = Context::new(&fidelity);
    let taipei = [geodata::taipei()];
    let n = if fidelity.full { 500 } else { 200 };
    let mut rng = run_rng(0xAB9, 0);
    let idx = sample_indices(&mut rng, ctx.pool.len(), n);
    let vt = ctx.subset_table(&idx, &taipei);
    let all: Vec<usize> = (0..n).collect();
    let window = (3600.0 / ctx.grid.step_s).max(1.0) as usize;

    // Accelerated failure model so the effect is visible within the
    // horizon: MTBF of 20 days (real satellites: years — scale, not shape).
    let mtbf = 20.0 * 86_400.0;
    let scenarios = [
        ("no failures", FailureModel { mtbf_s: f64::INFINITY, launch_interval_s: 0.0, batch_size: 0 }),
        ("failures, no replenishment", FailureModel { mtbf_s: mtbf, launch_interval_s: 0.0, batch_size: 0 }),
        (
            "failures + daily batch of 5",
            FailureModel { mtbf_s: mtbf, launch_interval_s: 86_400.0, batch_size: 5 },
        ),
    ];
    let mut rows = Vec::new();
    for (label, model) in scenarios {
        let run = simulate_failures(&vt, &all, 0, &model, window, 0xF411);
        rows.push(vec![
            label.to_string(),
            format!("{}", run.failures),
            format!("{}", run.replacements),
            format!("{}", run.min_alive()),
            format!("{:.2}", run.mean_coverage() * 100.0),
            format!("{:.2}", run.coverage.last().unwrap_or(&0.0) * 100.0),
        ]);
    }
    print_table(
        &["scenario", "failures", "replacements", "min alive", "mean coverage %", "final coverage %"],
        &rows,
    );
    println!("\ntakeaway: random failures degrade coverage smoothly — the same");
    println!("graceful, stake-proportional behaviour as Fig. 5's withdrawals,");
    println!("because interspersed ownership leaves no structural hole for a");
    println!("random loss to widen. A modest replenishment cadence holds the");
    println!("steady state; no coordination with other parties is needed.");
}
