//! Figure 6: coverage reduction vs stake skew when the largest party
//! withdraws.
//!
//! Paper protocol: 1000 satellites split across 11 parties with stake ratio
//! r:1:…:1 for r in 1..=10; the largest party withdraws; population-weighted
//! coverage over one week, 100 runs. Headline: equal stakes (91 sats each)
//! minimize the loss; at 10:1 (500 sats) the loss grows to ~5.5% (10 h of
//! no coverage per week) yet the network stays serviceable.

use mpleo::robustness::skewed_withdrawal_experiment;
use mpleo_bench::{fmt_dur, print_table, Context, Fidelity};

fn main() {
    let fidelity = Fidelity::from_env();
    fidelity.banner("Fig 6", "coverage loss vs stake ratio (largest of 11 parties withdraws)");

    let ctx = Context::new(&fidelity);
    println!("computing pool visibility table ({} sats x 21 cities)...", ctx.pool.len());
    let vt = ctx.city_table();
    let week_s = 7.0 * 86_400.0;

    let mut rows = Vec::new();
    for r in 1..=10u32 {
        let agg =
            skewed_withdrawal_experiment(&vt, 1000, r as f64, 10, &ctx.weights, fidelity.runs, 0xF166);
        let largest = mpleo::party::allocate_by_ratio(1000, &mpleo::party::skewed_ratios(r as f64, 10))[0];
        rows.push(vec![
            format!("{r}:1:...:1"),
            largest.to_string(),
            format!("{:.2}", agg.mean),
            format!("{:.2}", agg.std_dev),
            fmt_dur(agg.mean / 100.0 * week_s),
        ]);
    }
    print_table(
        &["stake ratio", "largest party sats", "coverage loss %", "std", "loss per week"],
        &rows,
    );
    println!("\npaper shape: loss grows with skew; ~5.5% (10 h/week) at 10:1,");
    println!("             still serviceable because the rest hold ~half the network.");
}
