//! Ablation: fixed vs scarcity (dynamic) pricing under skewed stakes.
//!
//! The paper leaves market design open (§3.2, §4): "These prices can be
//! dynamically set, leading to open data markets, or they can be
//! predetermined." This ablation settles the same service records under
//! both models and compares how revenue tracks stake.

use leosim::montecarlo::{run_rng, sample_indices};
use mpleo::incentives::{service_records, settle, visible_count_matrix, PricingModel};
use mpleo::party::{allocate_by_ratio, skewed_ratios, PartyId};
use mpleo_bench::{print_table, Context, Fidelity};
use std::collections::HashMap;

fn main() {
    let fidelity = Fidelity::from_env();
    fidelity.banner("Ablation", "fixed vs dynamic pricing revenue split (3:1:1 stakes)");

    let ctx = Context::new(&fidelity);
    let sample = if fidelity.full { 250 } else { 100 };
    let mut rng = run_rng(0xAB3, 0);
    let idx = sample_indices(&mut rng, ctx.pool.len(), sample);
    // Five consumer cities; consumers are a separate party so the whole
    // provider side is revenue-positive.
    let sites = &ctx.sites[..5];
    let vt = ctx.subset_table(&idx, sites);

    // Stakes 3:1:1 over the sample, interleaved.
    let counts = allocate_by_ratio(sample, &skewed_ratios(3.0, 2));
    let mut sat_owner: HashMap<usize, PartyId> = HashMap::new();
    let mut cursor = 0;
    for (pi, &c) in counts.iter().enumerate() {
        for k in 0..c {
            // Interleave by striding.
            let sat = (cursor + k) % sample;
            sat_owner.entry(sat).or_insert_with(|| PartyId::new(format!("party-{pi}")));
            cursor += 0;
        }
        cursor += c;
    }
    // Fill any holes deterministically.
    for s in 0..sample {
        sat_owner.entry(s).or_insert_with(|| PartyId::new("party-0"));
    }
    let site_consumer: HashMap<usize, PartyId> =
        (0..sites.len()).map(|s| (s, PartyId::new("consumers"))).collect();

    let all: Vec<usize> = (0..sample).collect();
    let records = service_records(&vt, &all);
    let counts_matrix = visible_count_matrix(&vt, &all);

    let fixed = settle(&records, &sat_owner, &site_consumer, PricingModel::Fixed { rate: 1.0 }, &counts_matrix);
    let dynamic = settle(
        &records,
        &sat_owner,
        &site_consumer,
        PricingModel::Dynamic { base: 1.0, surge: 3.0 },
        &counts_matrix,
    );

    let mut rows = Vec::new();
    for (pi, &c) in counts.iter().enumerate() {
        let id = PartyId::new(format!("party-{pi}"));
        rows.push(vec![
            id.to_string(),
            c.to_string(),
            format!("{:.0}", fixed.balance(&id)),
            format!("{:.0}", dynamic.balance(&id)),
        ]);
    }
    rows.push(vec![
        "consumers".into(),
        "0".into(),
        format!("{:.0}", fixed.balance(&PartyId::new("consumers"))),
        format!("{:.0}", dynamic.balance(&PartyId::new("consumers"))),
    ]);
    print_table(&["party", "satellites", "fixed revenue", "dynamic revenue"], &rows);
    println!("\nfixed volume: {:.0} credits, dynamic volume: {:.0} credits", fixed.volume, dynamic.volume);
    println!("takeaway: both models pay roughly in proportion to stake, but");
    println!("scarcity pricing shifts revenue toward satellites that serve");
    println!("steps with few alternatives — rewarding exactly the gap-filling");
    println!("placements the paper's incentive argument wants to encourage.");
}
