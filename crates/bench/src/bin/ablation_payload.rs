//! Ablation: transparent repeater vs regenerative payload.
//!
//! The paper chooses a transparent bent pipe (§3.1) and flags the cost in
//! §4: packet-level (regenerative) designs "avoid any amplification of
//! noise from ground transmissions". This study runs the link budget for
//! both architectures across the elevation range a pass sweeps, showing the
//! throughput the transparency simplification gives up.

use leosim::linkbudget::{
    end_to_end_capacity_bps, end_to_end_cn, slant_range_km, PayloadArchitecture, RfLeg,
};
use mpleo_bench::print_table;

fn main() {
    println!("=== Ablation: transparent vs regenerative payload (Ku band, 550 km) ===\n");
    let up = RfLeg::ku_user_uplink();
    let down = RfLeg::ku_gateway_downlink();

    let mut rows = Vec::new();
    for el_deg in [10.0f64, 25.0, 40.0, 60.0, 90.0] {
        let r = slant_range_km(550.0, el_deg.to_radians());
        let cn_t = end_to_end_cn(PayloadArchitecture::Transparent, &up, r, &down, r);
        let cn_r = end_to_end_cn(PayloadArchitecture::Regenerative, &up, r, &down, r);
        let cap_t = end_to_end_capacity_bps(PayloadArchitecture::Transparent, &up, r, &down, r);
        let cap_r = end_to_end_capacity_bps(PayloadArchitecture::Regenerative, &up, r, &down, r);
        rows.push(vec![
            format!("{el_deg:.0}"),
            format!("{r:.0}"),
            format!("{:.1}", 10.0 * cn_t.log10()),
            format!("{:.1}", 10.0 * cn_r.log10()),
            format!("{:.0}", cap_t / 1e6),
            format!("{:.0}", cap_r / 1e6),
            format!("{:.1}", 100.0 * (cap_r - cap_t) / cap_r),
        ]);
    }
    print_table(
        &[
            "elevation (deg)",
            "slant range (km)",
            "C/N transp (dB)",
            "C/N regen (dB)",
            "rate transp (Mbps)",
            "rate regen (Mbps)",
            "throughput given up %",
        ],
        &rows,
    );

    // Second scenario: terminal-to-terminal relay (no gateway). Both legs
    // end at small user antennas, so the budgets are balanced and the
    // transparent noise-stacking shows its full 3 dB.
    println!("\nterminal-to-terminal relay (balanced legs — both ends are user dishes):\n");
    let down_user = RfLeg { g_over_t_db_k: 8.0, ..down };
    let mut rows2 = Vec::new();
    for el_deg in [10.0f64, 40.0, 90.0] {
        let r = slant_range_km(550.0, el_deg.to_radians());
        let cn_t = end_to_end_cn(PayloadArchitecture::Transparent, &up, r, &down_user, r);
        let cn_r = end_to_end_cn(PayloadArchitecture::Regenerative, &up, r, &down_user, r);
        let cap_t = end_to_end_capacity_bps(PayloadArchitecture::Transparent, &up, r, &down_user, r);
        let cap_r = end_to_end_capacity_bps(PayloadArchitecture::Regenerative, &up, r, &down_user, r);
        rows2.push(vec![
            format!("{el_deg:.0}"),
            format!("{:.1}", 10.0 * cn_t.log10()),
            format!("{:.1}", 10.0 * cn_r.log10()),
            format!("{:.0}", cap_t / 1e6),
            format!("{:.0}", cap_r / 1e6),
            format!("{:.1}", 100.0 * (cap_r - cap_t) / cap_r),
        ]);
    }
    print_table(
        &[
            "elevation (deg)",
            "C/N transp (dB)",
            "C/N regen (dB)",
            "rate transp (Mbps)",
            "rate regen (Mbps)",
            "throughput given up %",
        ],
        &rows2,
    );
    println!("\ntakeaway: transparency costs ~3 dB of C/N when the legs are");
    println!("balanced, a modest single-digit-percent throughput loss at these");
    println!("budgets — cheap relative to what it buys the paper's design:");
    println!("protocol freedom, end-to-end encryption, and dumb, long-lived");
    println!("satellites that any party can use without interoperability work.");
}
