//! Thin shim: the implementation lives in
//! `mpleo_bench::experiments::traffic_diurnal`; this binary is kept for CLI
//! compatibility. Prefer `--bin suite --only traffic_diurnal` (or `mpleo
//! experiments`) to run several experiments over one shared context.

fn main() {
    mpleo_bench::runner::main_for("traffic_diurnal");
}
