//! Ablation: bootstrapping — delay-tolerant service and early-adopter
//! tokens for sparse constellations (paper §4).
//!
//! Two halves:
//!
//! 1. **DTN service** — what can a 4/10/25-satellite constellation actually
//!    sell? Store-and-forward delivery latency for IoT-style bundles shows
//!    sparse deployments are useful long before real-time coverage exists.
//! 2. **Token emission** — five parties join in sequence; the early-adopter
//!    multiplier determines whether joining first pays.

use leosim::dtn::{dtn_stats, simulate_dtn};
use leosim::montecarlo::{run_rng, sample_indices};
use mpleo::bootstrap::{simulate_bootstrap, EmissionSchedule};
use mpleo_bench::{fmt_dur, print_table, Context, Fidelity};
use orbital::ground::GroundSite;

fn main() {
    let fidelity = Fidelity::from_env();
    fidelity.banner("Ablation", "bootstrapping: DTN service + early-adopter tokens");

    let ctx = Context::new(&fidelity);

    // --- Part 1: what a sparse constellation delivers ------------------
    println!("\n[1] delay-tolerant delivery, terminal Taipei -> ground station New York");
    let terminal = [GroundSite::from_degrees("Taipei", 25.03, 121.56)];
    let gs = [GroundSite::from_degrees("NY-GS", 40.71, -74.01)];
    let mut rows = Vec::new();
    for &n in &[4usize, 10, 25, 100] {
        let mut rng = run_rng(0xAB5, n as u64);
        let idx = sample_indices(&mut rng, ctx.pool.len(), n);
        let vt_t = ctx.subset_table(&idx, &terminal);
        let vt_g = ctx.subset_table(&idx, &gs);
        let all: Vec<usize> = (0..n).collect();
        let hourly = (3600.0 / ctx.grid.step_s) as usize;
        let deliveries = simulate_dtn(&vt_t, &vt_g, 0, &all, &[0], hourly);
        let stats = dtn_stats(&deliveries, &ctx.grid);
        rows.push(vec![
            n.to_string(),
            format!("{:.0}", stats.delivery_ratio * 100.0),
            fmt_dur(stats.median_latency_s),
            fmt_dur(stats.max_latency_s),
        ]);
    }
    print_table(
        &["satellites", "delivered %", "median latency", "worst latency"],
        &rows,
    );
    println!("(bundles created hourly; horizon {:.1} days)", ctx.grid.duration_s() / 86_400.0);

    // --- Part 2: early-adopter token economics -------------------------
    println!("\n[2] token emission across 5 joining parties (greedy gap-filling placement)");
    let sub = sample_indices(&mut run_rng(0xAB5, 99), ctx.pool.len(), 400);
    let vt = ctx.subset_table(&sub, &ctx.sites);
    let parties = ["round0", "round1", "round2", "round3", "round4"];
    for (label, schedule) in [
        ("with 3x early-adopter bonus (decay 0.5/round)", EmissionSchedule::default()),
        ("flat emission (no bonus)", EmissionSchedule { early_multiplier: 1.0, ..Default::default() }),
    ] {
        let out = simulate_bootstrap(&vt, &ctx.weights, &parties, 10, &schedule);
        println!("\n  {label}:");
        let mut rows = Vec::new();
        for p in parties {
            rows.push(vec![p.to_string(), format!("{:.0}", out.balances[p])]);
        }
        rows.push(vec![
            "final coverage".into(),
            format!("{:.1}% pop-weighted", out.rounds.last().unwrap().coverage_s / vt.grid.duration_s() * 100.0),
        ]);
        print_table(&["party (join order)", "tokens"], &rows);
    }
    println!("\ntakeaway: sparse constellations are sellable for delay-tolerant");
    println!("traffic from day one, and an early-adopter multiplier makes the");
    println!("low-coverage rounds worth joining — the paper's two bootstrap levers.");
}
