//! Figure 4b: impact of phase placement between two existing satellites.
//!
//! Paper protocol: 12 satellites in one plane (53 deg, 546 km), 30 deg
//! apart; add one satellite at each of 29 phase offsets (about 1 deg /
//! 120 km apart) between two originals. Headline: the midpoint (15 deg from
//! each neighbor) maximizes the coverage improvement.

use mpleo::placement::phase_sweep;
use mpleo_bench::{fmt_dur, print_table, Context, Fidelity, scenario_epoch};

fn main() {
    let fidelity = Fidelity::from_env();
    fidelity.banner("Fig 4b", "coverage gain vs phase offset of the added satellite");

    let ctx = Context::new(&fidelity);
    let points = phase_sweep(&ctx.sites, &ctx.weights, &ctx.grid, &ctx.config, scenario_epoch());
    let week_scale = 7.0 * 86_400.0 / ctx.grid.duration_s();

    let best = points
        .iter()
        .max_by(|a, b| a.gain_s.partial_cmp(&b.gain_s).unwrap())
        .expect("sweep is non-empty");
    let mut rows = Vec::new();
    for p in &points {
        let marker = if (p.offset_deg - best.offset_deg).abs() < 1e-9 { " <-- max" } else { "" };
        rows.push(vec![
            format!("{:.0}", p.offset_deg),
            fmt_dur(p.gain_s * week_scale),
            format!("{:.1}{marker}", p.gain_s * week_scale / 60.0),
        ]);
    }
    print_table(&["offset (deg)", "gain /wk", "gain (min)"], &rows);
    println!(
        "\nmaximum at {:.0} deg offset (paper: 15 deg, the midpoint between",
        best.offset_deg
    );
    println!("the two existing satellites — farthest from both).");
}
