//! Thin shim: the implementation lives in
//! `mpleo_bench::experiments::fig4b`; this binary is kept for CLI
//! compatibility. Prefer `--bin suite --only fig4b` (or `mpleo
//! experiments`) to run several experiments over one shared context.

fn main() {
    mpleo_bench::runner::main_for("fig4b");
}
