//! Figure 1a: the ground track of one LEO satellite across three hours.
//!
//! The paper's figure shows the sub-satellite point drifting to a different
//! path on every orbit (color red -> blue with time). This binary prints the
//! lat/lon series and summarizes the westward drift per orbit.

use leosim::ephemeris::EphemerisStore;
use leosim::visibility::SimConfig;
use leosim::TimeGrid;
use mpleo_bench::{print_table, scenario_epoch};
use orbital::constellation::single_plane;
use orbital::frames::ecef_to_geodetic;

fn main() {
    println!("=== Fig 1a: orbital motion of a LEO satellite across three hours ===");
    let epoch = scenario_epoch();
    let sats = single_plane(1, 550.0, 53.0, epoch);
    let period_s = sats[0].elements.period_s();
    println!("satellite: 550 km, 53 deg inclination, period {:.1} min", period_s / 60.0);

    let mut rows = Vec::new();
    let mut equator_crossings: Vec<(f64, f64)> = Vec::new(); // (t, lon)
    let mut last: Option<(f64, f64)> = None; // (lat, lon at previous step)
    let step_s = 30.0;
    let horizon_s = 3.0 * 3600.0;
    // Track the crossings over a longer window (4 orbits) so the per-orbit
    // drift table below has several rows even though the figure's track
    // spans 3 hours.
    let crossing_horizon_s = 4.2 * period_s;
    let grid = TimeGrid::new(epoch, crossing_horizon_s, step_s);
    // The store already holds ECEF positions, so the sub-satellite point is
    // a direct geodetic conversion — no per-step propagation here.
    let store = EphemerisStore::build(&sats, &grid, &SimConfig::default());
    for k in 0..grid.steps {
        let t = k as f64 * step_s;
        let g = ecef_to_geodetic(store.position(0, k));
        let (lat, lon) = (g.latitude_deg(), g.longitude_deg());
        if t <= horizon_s && (t as u64).is_multiple_of(600) {
            rows.push(vec![
                format!("{:.0}", t / 60.0),
                format!("{lat:.2}"),
                format!("{lon:.2}"),
            ]);
        }
        if let Some((prev_lat, prev_lon)) = last {
            if prev_lat < 0.0 && lat >= 0.0 && t > step_s {
                equator_crossings.push((t, (prev_lon + lon) / 2.0));
            }
        }
        last = Some((lat, lon));
    }
    print_table(&["t (min)", "lat (deg)", "lon (deg)"], &rows);

    println!("\nascending equator crossings (the paper's per-orbit drift):");
    let mut drift_rows = Vec::new();
    for pair in equator_crossings.windows(2) {
        let dl = orbital::math::wrap_pi((pair[1].1 - pair[0].1).to_radians()).to_degrees();
        drift_rows.push(vec![
            format!("{:.1}", pair[0].0 / 60.0),
            format!("{:.2}", pair[0].1),
            format!("{dl:.2}"),
        ]);
    }
    print_table(&["t (min)", "crossing lon (deg)", "drift to next (deg)"], &drift_rows);
    println!("\nshape check: each orbit's track shifts ~-24 deg west; the satellite");
    println!("covers a different path each revolution, so no single region keeps it.");
}
