//! Thin shim: the implementation lives in
//! `mpleo_bench::experiments::fig1a`; this binary is kept for CLI
//! compatibility. Prefer `--bin suite --only fig1a` (or `mpleo
//! experiments`) to run several experiments over one shared context.

fn main() {
    mpleo_bench::runner::main_for("fig1a");
}
