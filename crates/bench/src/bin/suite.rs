//! The unified experiment runner: any subset of the 21 registered
//! figures/ablations in one process over one shared context. See
//! `--help` for flags; `mpleo experiments` is the same runner behind the
//! main CLI.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let code = match mpleo_bench::runner::parse_args(&args) {
        Ok(cmd) => mpleo_bench::runner::execute(cmd, "suite"),
        Err(e) => {
            eprintln!("suite: {e}");
            2
        }
    };
    std::process::exit(code);
}
