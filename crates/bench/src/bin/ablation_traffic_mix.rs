//! Thin shim: the implementation lives in
//! `mpleo_bench::experiments::ablation_traffic_mix`; this binary is kept
//! for CLI compatibility. Prefer `--bin suite --only ablation_traffic_mix`
//! (or `mpleo experiments`) to run several experiments over one shared
//! context.

fn main() {
    mpleo_bench::runner::main_for("ablation_traffic_mix");
}
