//! Figure 5: coverage reduction when half the constellation denies service.
//!
//! Paper protocol: base constellations of L in {200, 500, 1000, 2000}
//! satellites; withdraw a random L/2; population-weighted coverage over one
//! week, 100 runs. Headline: 24.17% reduction (1 d 16 h) at L=200, shrinking
//! to 0.37% at L=2000.

use mpleo::robustness::half_withdrawal_experiment;
use mpleo_bench::{fmt_dur, print_table, Context, Fidelity};

fn main() {
    let fidelity = Fidelity::from_env();
    fidelity.banner("Fig 5", "coverage lost when half the satellites withdraw");

    let ctx = Context::new(&fidelity);
    println!("computing pool visibility table ({} sats x 21 cities)...", ctx.pool.len());
    let vt = ctx.city_table();
    let week_s = 7.0 * 86_400.0;

    let mut rows = Vec::new();
    for &l in &[200usize, 500, 1000, 2000] {
        let agg = half_withdrawal_experiment(&vt, l, &ctx.weights, fidelity.runs, 0xF165);
        rows.push(vec![
            l.to_string(),
            format!("{:.2}", agg.mean),
            format!("{:.2}", agg.std_dev),
            fmt_dur(agg.mean / 100.0 * week_s),
        ]);
    }
    print_table(
        &["constellation L", "coverage loss %", "std", "loss per week"],
        &rows,
    );
    println!("\npaper shape: large loss at L=200 (24.17%, i.e. 1d 16h/week),");
    println!("             subsiding to 0.37% at L=2000.");
}
