//! Ablation: sensitivity of coverage to the elevation mask.
//!
//! The transparent bent-pipe design (paper §3.1) pushes all RF decisions to
//! the edges; the elevation mask is then the single link-layer knob the
//! constellation design depends on. This ablation re-runs the Fig. 2 style
//! experiment at several masks to show how the "satellites needed for
//! coverage" conclusion scales with it.

use leosim::coverage::{Aggregate, CoverageStats};
use leosim::montecarlo::{run_rng, sample_indices};
use mpleo_bench::{print_table, Context, Fidelity};

fn main() {
    let fidelity = Fidelity::from_env();
    fidelity.banner("Ablation", "coverage vs elevation mask (Taipei receiver)");

    let ctx = Context::new(&fidelity);
    let taipei = [geodata::taipei()];
    let masks = [10.0f64, 25.0, 40.0];
    let sizes = [100usize, 500, 1000];

    let mut rows = Vec::new();
    for &mask in &masks {
        // Positions don't depend on the mask: one shared propagation pass
        // (via the context's ephemeris store) serves all three masks, where
        // this loop used to re-propagate the full pool per mask.
        let cfg = ctx.config.clone().with_mask_deg(mask);
        let vt = ctx.table_for_config(&taipei, &cfg);
        for &size in &sizes {
            let mut unc = Vec::new();
            for run in 0..fidelity.runs {
                let mut rng = run_rng(0xAB1, run as u64);
                let subset = sample_indices(&mut rng, vt.sat_count(), size);
                let stats = CoverageStats::from_bitset(&vt.coverage_union(&subset, 0), &vt.grid);
                unc.push(stats.uncovered_fraction * 100.0);
            }
            let agg = Aggregate::from_samples(&unc);
            rows.push(vec![
                format!("{mask:.0}"),
                size.to_string(),
                format!("{:.2}", agg.mean),
                format!("{:.2}", 100.0 - agg.mean),
            ]);
        }
    }
    print_table(&["mask (deg)", "satellites", "no-coverage %", "coverage %"], &rows);
    println!("\ntakeaway: the constellation size needed for a coverage target is");
    println!("strongly mask-dependent — a 40 deg mask needs several times the");
    println!("satellites of a 10 deg mask for the same availability.");
}
