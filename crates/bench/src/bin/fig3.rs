//! Figure 3: satellite idle time vs number of cities served.
//!
//! Paper protocol: terminals at 1..=21 cities (top-20 most populated, one
//! per country, plus Melbourne); a satellite is idle when not connected to
//! any terminal. Headline: serving one city leaves satellites idle 99% of
//! the time; idle time falls as the served set grows.

use leosim::idle::mean_idle_fraction;
use leosim::montecarlo::{run_rng, sample_indices};
use leosim::visibility::VisibilityTable;
use mpleo_bench::{print_table, Context, Fidelity};

fn main() {
    let fidelity = Fidelity::from_env();
    fidelity.banner("Fig 3", "satellite idle time vs number of cities served");

    let ctx = Context::new(&fidelity);
    // The paper samples a Starlink deployment; we take a deterministic
    // random sample of the pool as "the constellation" whose idle time is
    // measured.
    let sample_size = if fidelity.full { 1000 } else { 300 };
    let mut rng = run_rng(0xF163, 0);
    let sample = sample_indices(&mut rng, ctx.pool.len(), sample_size);
    let vt = ctx.subset_table(&sample, &ctx.sites);
    run(&vt, sample_size);
}

fn run(vt: &VisibilityTable, sample_size: usize) {
    println!("constellation sample: {sample_size} satellites\n");
    let mut rows = Vec::new();
    for cities in 1..=21usize {
        let served: Vec<usize> = (0..cities).collect();
        let idle = mean_idle_fraction(vt, &served);
        rows.push(vec![
            cities.to_string(),
            vt.site_names[cities - 1].clone(),
            format!("{:.2}", idle * 100.0),
            format!("{:.2}", (1.0 - idle) * 100.0),
        ]);
    }
    print_table(
        &["cities served", "last city added", "idle %", "busy %"],
        &rows,
    );
    println!("\npaper shape: ~99% idle at 1 city, monotonically decreasing as");
    println!("             the served set expands across the globe.");
}
