//! Ablation: which SLA tiers can a constellation of a given size sell?
//!
//! Ties the paper's Fig. 2 coverage curve to its §4 market-design question
//! ("What kinds of quality-of-service can they provide?"): for each
//! constellation size, classify the Taipei coverage into service tiers and
//! report the handover load a subscriber would see.

use leosim::coverage::CoverageStats;
use leosim::montecarlo::{run_rng, sample_indices};
use mpleo::handover::{simulate_handover, HandoverPolicy};
use mpleo::sla::quote;
use mpleo_bench::{fmt_dur, print_table, Context, Fidelity};

fn main() {
    let fidelity = Fidelity::from_env();
    fidelity.banner("Ablation", "sellable SLA tier vs constellation size (Taipei)");

    let ctx = Context::new(&fidelity);
    let taipei = [geodata::taipei()];
    let vt = ctx.table_for(&taipei);

    let mut rows = Vec::new();
    for &size in &[25usize, 100, 300, 700, 1500] {
        let mut rng = run_rng(0xAB8, size as u64);
        let subset = sample_indices(&mut rng, vt.sat_count(), size);
        let covered = vt.coverage_union(&subset, 0);
        let stats = CoverageStats::from_bitset(&covered, &vt.grid);
        let q = quote(&stats);
        let trace = simulate_handover(&vt, 0, &subset, HandoverPolicy::StickyMaxDwell);
        rows.push(vec![
            size.to_string(),
            format!("{:.3}", q.availability * 100.0),
            fmt_dur(q.worst_outage_s),
            q.tier.name.to_string(),
            format!("{:.1}x", q.tier.price_multiplier),
            format!("{:.1}", trace.handover_rate_per_hour(ctx.grid.step_s)),
        ]);
    }
    print_table(
        &[
            "satellites",
            "availability %",
            "worst outage",
            "sellable tier",
            "price",
            "handovers /connected h",
        ],
        &rows,
    );
    println!("\ntakeaway: the tier ladder quantizes Fig. 2's smooth coverage curve");
    println!("into the products a participant can actually sell — sparse");
    println!("constellations monetize as delay-tolerant service (the §4");
    println!("bootstrapping path) long before interactive tiers unlock.");
}
