//! The `Experiment` abstraction: every figure and ablation of the paper's
//! evaluation is one implementation of [`Experiment`], producing a
//! serde-serializable [`ExperimentResult`] instead of a human-only table.
//!
//! The split of responsibilities:
//!
//! * an experiment's `run` fills the **data** fields (scalars, series,
//!   tables, notes) from a shared [`Context`];
//! * the [runner](crate::runner) fills the **metadata** fields (id, title,
//!   fidelity, seeds, params, git describe, timing) and evaluates the
//!   experiment's [expectations](crate::expectations) into the same record
//!   before writing `results/<id>.json`.

use crate::expectations::{Expectation, ExpectationOutcome};
use crate::{Context, Fidelity};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Version of the JSON result schema; bump on breaking field changes.
pub const SCHEMA_VERSION: u32 = 1;

/// One experiment of the paper's evaluation (a figure or an ablation).
pub trait Experiment: Sync {
    /// Stable identifier (`fig2`, `ablation_isl`, …); also the historical
    /// binary name and the `results/<id>.json` stem.
    fn id(&self) -> &'static str;

    /// Human title, printed in the banner.
    fn title(&self) -> &'static str;

    /// The base RNG seeds this experiment draws from (see [`crate::seeds`]).
    fn seeds(&self) -> Vec<u64> {
        Vec::new()
    }

    /// The experiment-specific parameter set at a fidelity, recorded in the
    /// result so "measured" is never ambiguous.
    fn params(&self, fidelity: &Fidelity) -> Vec<(String, String)>;

    /// Paper-expectation bands checked against the scalars `run` produces.
    fn expectations(&self) -> Vec<Expectation> {
        Vec::new()
    }

    /// Run the experiment over the shared context. Implementations fill
    /// only the data fields of the result (via [`ExperimentResult::data`]);
    /// the runner owns the metadata.
    fn run(&self, ctx: &Context, fidelity: &Fidelity) -> ExperimentResult;
}

/// A named table of string cells — the machine form of what the binaries
/// used to `print_table`.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Table {
    /// Short name, unique within the experiment.
    pub name: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Rows of cells (same arity as `headers`).
    pub rows: Vec<Vec<String>>,
}

/// The fidelity an experiment actually ran at.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct FidelityRecord {
    /// Simulated horizon, seconds.
    pub horizon_s: f64,
    /// Time step, seconds.
    pub step_s: f64,
    /// Monte-Carlo runs per point.
    pub runs: usize,
    /// True when running the paper's full settings.
    pub full: bool,
}

impl From<&Fidelity> for FidelityRecord {
    fn from(f: &Fidelity) -> FidelityRecord {
        FidelityRecord { horizon_s: f.horizon_s, step_s: f.step_s, runs: f.runs, full: f.full }
    }
}

/// Per-experiment timing, filled by the runner. All fields are measured,
/// never part of the deterministic payload — result-comparison tooling
/// (e.g. the CI thread-count determinism gate) strips the whole `timing`
/// object before diffing.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Timing {
    /// Wall-clock seconds.
    pub wall_s: f64,
    /// CPU seconds of the driving thread (best effort; `None` where the
    /// platform offers no per-thread accounting).
    pub cpu_s: Option<f64>,
    /// Summed busy seconds across every `simrt` scope claimant this
    /// experiment started (`busy_s / wall_s` approximates its effective
    /// parallelism). `None` when the experiment ran no parallel scopes.
    #[serde(default)]
    pub busy_s: Option<f64>,
    /// Seconds this experiment's helper jobs waited in the `simrt` pool
    /// queue before a worker picked them up — the contention signal.
    #[serde(default)]
    pub queue_wait_s: Option<f64>,
}

/// The structured record of one experiment run; serialized to
/// `results/<id>.json`.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ExperimentResult {
    /// Result schema version ([`SCHEMA_VERSION`]).
    pub schema_version: u32,
    /// Experiment id.
    pub id: String,
    /// Experiment title.
    pub title: String,
    /// The fidelity the run used.
    pub fidelity: FidelityRecord,
    /// `git describe` of the tree that produced the result, when available.
    pub git_describe: Option<String>,
    /// Base RNG seeds.
    pub seeds: Vec<u64>,
    /// Parameter set (ordered key/value pairs).
    pub params: Vec<(String, String)>,
    /// Named headline scalars — the values expectations test.
    pub scalars: BTreeMap<String, f64>,
    /// Named numeric series (the figure's plotted data).
    pub series: BTreeMap<String, Vec<f64>>,
    /// Row-level tables.
    pub tables: Vec<Table>,
    /// Free-form notes (the old binaries' epilogue text).
    pub notes: Vec<String>,
    /// Wall/CPU timing.
    pub timing: Timing,
    /// Evaluated paper expectations.
    pub expectations: Vec<ExpectationOutcome>,
}

impl ExperimentResult {
    /// Start a data-only result; experiments chain the builder methods
    /// below and the runner fills the metadata.
    pub fn data() -> ExperimentResult {
        ExperimentResult { schema_version: SCHEMA_VERSION, ..Default::default() }
    }

    /// Record a headline scalar.
    pub fn scalar(mut self, key: &str, value: f64) -> Self {
        self.scalars.insert(key.to_string(), value);
        self
    }

    /// Record a named series.
    pub fn series(mut self, key: &str, values: Vec<f64>) -> Self {
        self.series.insert(key.to_string(), values);
        self
    }

    /// Record a table.
    pub fn table(mut self, name: &str, headers: &[&str], rows: Vec<Vec<String>>) -> Self {
        self.tables.push(Table {
            name: name.to_string(),
            headers: headers.iter().map(|h| h.to_string()).collect(),
            rows,
        });
        self
    }

    /// Record a note line.
    pub fn note(mut self, text: impl Into<String>) -> Self {
        self.notes.push(text.into());
        self
    }
}
