//! The experiment runner.
//!
//! One process, one shared [`Context`] (and therefore one pool ephemeris
//! build), any subset of the registry. Three entry points share it:
//!
//! * the 25 historical binaries, each now a one-line
//!   [`main_for`]`("fig2")` shim;
//! * the `suite` binary (`--only`/`--skip`/`--strict`/`--report`, …);
//! * the `mpleo experiments` CLI subcommand.
//!
//! Independent experiments fan out on the shared `simrt` worker pool (one
//! task per experiment; the pool's token budget keeps this outer
//! parallelism and each experiment's inner Monte-Carlo parallelism within
//! one core budget) with per-experiment wall, CPU, and pool timing; each
//! produces a structured [`ExperimentResult`] written to
//! `results/<id>.json`, with paper expectations evaluated to
//! pass/warn/fail both in the JSON and in the exit code (`--strict`).

use crate::expectations::{self, Status};
use crate::experiment::{Experiment, ExperimentResult, Timing};
use crate::{registry, render_table, report, Context, Fidelity};
use std::fs;
use std::io::Write as _;
use std::path::PathBuf;
use std::sync::Mutex;
use std::time::Instant;

/// Options for one suite invocation.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SuiteOptions {
    /// Run only these ids (registry order); empty means all.
    pub only: Vec<String>,
    /// Skip these ids.
    pub skip: Vec<String>,
    /// Results directory (default `results/`, or `MPLEO_RESULTS_DIR`).
    pub out_dir: Option<PathBuf>,
    /// Evaluate every expectation failure as a warning (the CI mode).
    pub warn_only: bool,
    /// Run experiments one at a time instead of in parallel.
    pub sequential: bool,
    /// Suppress per-experiment human output (results JSON still written).
    pub quiet: bool,
    /// Use this fidelity instead of reading the environment (tests).
    pub fidelity: Option<Fidelity>,
    /// Worker-thread override (`--threads`; 0 = keep the fidelity's /
    /// environment's resolution).
    pub threads: usize,
}

/// What a suite run produced, for exit-code decisions and tests.
#[derive(Debug, Default)]
pub struct SuiteSummary {
    /// All results, registry order.
    pub results: Vec<ExperimentResult>,
    /// Expectation counts across every experiment.
    pub pass: usize,
    /// See `pass`.
    pub warn: usize,
    /// See `pass`.
    pub fail: usize,
}

/// `git describe` of the working tree, when git is available.
pub fn git_describe() -> Option<String> {
    let out = std::process::Command::new("git")
        .args(["describe", "--always", "--dirty", "--tags"])
        .output()
        .ok()?;
    if !out.status.success() {
        return None;
    }
    let s = String::from_utf8_lossy(&out.stdout).trim().to_string();
    if s.is_empty() {
        None
    } else {
        Some(s)
    }
}

/// CPU seconds consumed by the calling thread, best effort. Reads
/// `/proc/thread-self/stat` (utime+stime at the kernel's usual 100 Hz
/// tick); returns `None` off Linux or on any parse surprise.
pub fn thread_cpu_s() -> Option<f64> {
    let stat = fs::read_to_string("/proc/thread-self/stat").ok()?;
    // The comm field is parenthesised and may contain spaces; fields
    // resume after the last ')'.
    let rest = &stat[stat.rfind(')')? + 1..];
    let fields: Vec<&str> = rest.split_whitespace().collect();
    // rest starts at field 3 (state), so utime/stime (fields 14/15) are at
    // indices 11/12.
    let utime: f64 = fields.get(11)?.parse().ok()?;
    let stime: f64 = fields.get(12)?.parse().ok()?;
    Some((utime + stime) / 100.0)
}

fn results_dir(opts: &SuiteOptions) -> PathBuf {
    opts.out_dir.clone().unwrap_or_else(|| {
        std::env::var("MPLEO_RESULTS_DIR").map(PathBuf::from).unwrap_or_else(|_| "results".into())
    })
}

/// Run one experiment: fill the metadata around its data-only result and
/// evaluate its expectations. Must be called on the thread that does the
/// work so the CPU accounting is per-experiment.
fn run_one(
    exp: &dyn Experiment,
    ctx: &Context,
    fidelity: &Fidelity,
    git: Option<&str>,
    warn_only: bool,
) -> ExperimentResult {
    let _ = simrt::take_thread_metrics();
    let cpu0 = thread_cpu_s();
    let wall0 = Instant::now();
    let mut r = exp.run(ctx, fidelity);
    let wall_s = wall0.elapsed().as_secs_f64();
    let cpu_s = match (cpu0, thread_cpu_s()) {
        (Some(a), Some(b)) => Some(b - a),
        _ => None,
    };
    // Parallel scopes started by this experiment (this thread) since the
    // drain above. Measured timing only — never diffed for determinism.
    let pool = simrt::take_thread_metrics();
    r.id = exp.id().to_string();
    r.title = exp.title().to_string();
    r.fidelity = fidelity.into();
    r.seeds = exp.seeds();
    r.params = exp.params(fidelity);
    r.git_describe = git.map(str::to_string);
    r.timing = Timing {
        wall_s,
        cpu_s,
        busy_s: (pool.scopes > 0).then_some(pool.busy_s),
        queue_wait_s: (pool.scopes > 0).then_some(pool.queue_wait_s),
    };
    r.expectations =
        expectations::evaluate_all(&exp.expectations(), &r.scalars, fidelity.full, warn_only);
    r
}

/// Render one finished experiment as the human block the old binaries
/// printed: banner, params, tables, notes, expectation verdicts, timing.
fn render_block(r: &ExperimentResult) -> String {
    let mut out = String::new();
    let line = "=".repeat(64);
    out.push_str(&format!("{line}\n  {}: {}\n{line}\n", r.id, r.title));
    let params: Vec<String> = r.params.iter().map(|(k, v)| format!("{k}={v}")).collect();
    out.push_str(&format!(
        "fidelity: {} ({:.0} s horizon, {:.0} s step, {} runs)\n",
        if r.fidelity.full { "full" } else { "quick" },
        r.fidelity.horizon_s,
        r.fidelity.step_s,
        r.fidelity.runs
    ));
    if !params.is_empty() {
        out.push_str(&format!("params:   {}\n", params.join(", ")));
    }
    for t in &r.tables {
        out.push('\n');
        let headers: Vec<&str> = t.headers.iter().map(String::as_str).collect();
        out.push_str(&render_table(&headers, &t.rows));
    }
    if !r.notes.is_empty() {
        out.push('\n');
        for n in &r.notes {
            out.push_str(n);
            out.push('\n');
        }
    }
    if !r.expectations.is_empty() {
        out.push_str("\npaper expectations:\n");
        for e in &r.expectations {
            let measured = match e.measured {
                Some(m) => format!("{m:.3}"),
                None => "missing".to_string(),
            };
            let why = match &e.downgraded {
                Some(w) => format!(" [downgraded: {w}]"),
                None => String::new(),
            };
            out.push_str(&format!(
                "  [{}] {} {} {} (tol {}): measured {}{} — {}\n",
                e.status.label(),
                e.metric,
                e.comparator,
                e.target,
                e.tol,
                measured,
                why,
                e.paper_ref
            ));
        }
    }
    out.push_str(&format!(
        "timing: {:.2} s wall{}{}{}\n",
        r.timing.wall_s,
        match r.timing.cpu_s {
            Some(c) => format!(", {c:.2} s cpu"),
            None => String::new(),
        },
        match r.timing.busy_s {
            Some(b) => format!(", {b:.2} s busy"),
            None => String::new(),
        },
        match r.timing.queue_wait_s {
            Some(q) => format!(", {q:.2} s queued"),
            None => String::new(),
        }
    ));
    out
}

/// Run the selected experiments over one shared context, write their JSON
/// results, and return the summary. Errors (bad ids, bad env, unwritable
/// results dir) come back as strings for the caller to print and exit on.
pub fn run_suite(opts: &SuiteOptions) -> Result<SuiteSummary, String> {
    let selected = registry::select(&opts.only, &opts.skip)?;
    if selected.is_empty() {
        return Err("no experiments selected".to_string());
    }
    let mut fidelity = match &opts.fidelity {
        Some(f) => *f,
        None => Fidelity::from_env().map_err(|e| e.to_string())?,
    };
    if opts.threads > 0 {
        fidelity.threads = opts.threads;
        // Resolve the process-wide count too, so the pool (if not yet
        // built) is sized to match the explicit request.
        simrt::configure(opts.threads);
    }
    let dir = results_dir(opts);
    fs::create_dir_all(&dir).map_err(|e| format!("cannot create {}: {e}", dir.display()))?;
    let git = git_describe();
    let ctx = Context::new(&fidelity);

    let stdout = Mutex::new(());
    let run_and_emit = |exp: &dyn Experiment| -> Result<ExperimentResult, String> {
        let r = run_one(exp, &ctx, &fidelity, git.as_deref(), opts.warn_only);
        let path = dir.join(format!("{}.json", r.id));
        let json = serde_json::to_string_pretty(&r)
            .map_err(|e| format!("cannot serialize {}: {e}", r.id))?;
        fs::write(&path, json).map_err(|e| format!("cannot write {}: {e}", path.display()))?;
        if !opts.quiet {
            let block = render_block(&r);
            let _guard = stdout.lock().unwrap();
            let mut out = std::io::stdout().lock();
            let _ = writeln!(out, "{block}");
        }
        Ok(r)
    };

    // Scopes started under this cap (the fan-out below, plus — at cap 1 —
    // every transitively inline inner scope) honor the fidelity's thread
    // count, which is how the determinism tests compare threads=1 against
    // threads=N inside one process.
    let results: Vec<Result<ExperimentResult, String>> =
        simrt::with_thread_cap(fidelity.threads, || {
            if opts.sequential || selected.len() == 1 {
                selected.iter().map(|exp| run_and_emit(*exp)).collect()
            } else {
                // One pool task per experiment. Panics stay inside the task
                // (same contract as the old per-experiment thread join).
                simrt::par_map_indexed(selected.len(), 0, |i| {
                    std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                        run_and_emit(selected[i])
                    }))
                    .unwrap_or_else(|_| Err("experiment thread panicked".to_string()))
                })
            }
        });

    let mut summary = SuiteSummary::default();
    for (res, exp) in results.into_iter().zip(&selected) {
        let r = res.map_err(|e| format!("{}: {e}", exp.id()))?;
        for o in &r.expectations {
            match o.status {
                Status::Pass => summary.pass += 1,
                Status::Warn => summary.warn += 1,
                Status::Fail => summary.fail += 1,
            }
        }
        summary.results.push(r);
    }
    Ok(summary)
}

fn print_summary(s: &SuiteSummary) {
    println!(
        "suite: {} experiment(s), expectations {} pass / {} warn / {} fail",
        s.results.len(),
        s.pass,
        s.warn,
        s.fail
    );
}

/// Entry point for the 25 historical binaries: run exactly one experiment
/// (quick fidelity by default, `MPLEO_FULL=1` for the paper's), write its
/// JSON, and exit non-zero on a hard expectation failure.
pub fn main_for(id: &str) {
    let opts = SuiteOptions { only: vec![id.to_string()], ..Default::default() };
    match run_suite(&opts) {
        Ok(s) if s.fail > 0 => {
            eprintln!("{id}: {} paper expectation(s) failed", s.fail);
            std::process::exit(1);
        }
        Ok(_) => {}
        Err(e) => {
            eprintln!("{id}: {e}");
            std::process::exit(2);
        }
    }
}

/// What a parsed `suite` (or `mpleo experiments`) command line asks for.
#[derive(Debug, PartialEq)]
pub enum SuiteCommand {
    /// Print the registry and exit.
    List,
    /// Run the suite. `strict` exits non-zero when any expectation fails.
    Run {
        /// Runner options.
        opts: SuiteOptions,
        /// Exit non-zero on expectation failures.
        strict: bool,
        /// Regenerate the EXPERIMENTS.md report block afterwards.
        report: bool,
    },
    /// Only regenerate the report from existing results.
    Report,
    /// Print usage.
    Help,
}

/// Usage text shared by `--bin suite` and `mpleo experiments`.
pub fn usage(prog: &str) -> String {
    format!(
        "usage: {prog} [--list] [--only id,id,...] [--skip id,id,...]\n\
         \x20        [--out DIR] [--strict] [--warn-only] [--sequential]\n\
         \x20        [--quiet] [--threads N] [--report] [--report-only]\n\
         \n\
         Runs the registered experiments (all by default) in one process\n\
         over a shared context, writing results/<id>.json per experiment.\n\
         \n\
         --list         print the experiment ids and titles, then exit\n\
         --only IDS     run only these comma-separated experiment ids\n\
         --skip IDS     skip these comma-separated experiment ids\n\
         --out DIR      results directory (default: results/, or $MPLEO_RESULTS_DIR)\n\
         --strict       exit non-zero if any paper expectation fails\n\
         --warn-only    downgrade every expectation failure to a warning\n\
         --sequential   run experiments one at a time\n\
         --quiet        suppress per-experiment output (JSON still written)\n\
         --threads N    worker threads for the shared pool (0 = auto)\n\
         --report       after running, regenerate EXPERIMENTS.md's report block\n\
         --report-only  regenerate the report from existing results, run nothing\n\
         \n\
         Fidelity comes from the environment: MPLEO_FULL=1 for the paper's\n\
         protocol, MPLEO_RUNS / MPLEO_HORIZON_S / MPLEO_STEP_S to override.\n\
         MPLEO_THREADS sets the worker count when --threads is not given\n\
         (0 or unset = auto-detect)."
    )
}

/// Parse `suite`-style arguments (everything after the program name).
pub fn parse_args(args: &[String]) -> Result<SuiteCommand, String> {
    let mut opts = SuiteOptions::default();
    let mut strict = false;
    let mut report = false;
    let mut report_only = false;
    let mut list = false;
    fn split_ids(v: &str) -> Vec<String> {
        v.split(',').map(|s| s.trim().to_string()).filter(|s| !s.is_empty()).collect()
    }
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--list" => list = true,
            "--only" => {
                let v = it
                    .next()
                    .ok_or_else(|| "--only needs a comma-separated id list".to_string())?;
                opts.only = split_ids(v);
            }
            "--skip" => {
                let v = it
                    .next()
                    .ok_or_else(|| "--skip needs a comma-separated id list".to_string())?;
                opts.skip = split_ids(v);
            }
            "--out" => {
                opts.out_dir =
                    Some(it.next().ok_or_else(|| "--out needs a directory".to_string())?.into());
            }
            "--strict" => strict = true,
            "--warn-only" => opts.warn_only = true,
            "--sequential" => opts.sequential = true,
            "--quiet" => opts.quiet = true,
            "--threads" => {
                let v =
                    it.next().ok_or_else(|| "--threads needs a count (0 = auto)".to_string())?;
                opts.threads = v.parse::<usize>().map_err(|_| {
                    format!(
                        "--threads {v:?} is invalid: expected a non-negative integer (0 = auto)"
                    )
                })?;
            }
            "--report" => report = true,
            "--report-only" => report_only = true,
            "--help" | "-h" => return Ok(SuiteCommand::Help),
            other => return Err(format!("unknown argument '{other}' (try --help)")),
        }
    }
    if list {
        return Ok(SuiteCommand::List);
    }
    if report_only {
        return Ok(SuiteCommand::Report);
    }
    Ok(SuiteCommand::Run { opts, strict, report })
}

/// Execute a parsed command; returns the process exit code. This is the
/// whole body of `--bin suite` and of `mpleo experiments`.
pub fn execute(cmd: SuiteCommand, prog: &str) -> i32 {
    match cmd {
        SuiteCommand::Help => {
            println!("{}", usage(prog));
            0
        }
        SuiteCommand::List => {
            for exp in registry::ALL {
                println!("{:22} {}", exp.id(), exp.title());
            }
            0
        }
        SuiteCommand::Report => {
            let dir = results_dir(&SuiteOptions::default());
            match report::update_markdown(&dir, std::path::Path::new("EXPERIMENTS.md")) {
                Ok(n) => {
                    println!("EXPERIMENTS.md report block regenerated from {n} result(s)");
                    0
                }
                Err(e) => {
                    eprintln!("report: {e}");
                    2
                }
            }
        }
        SuiteCommand::Run { opts, strict, report: do_report } => match run_suite(&opts) {
            Ok(summary) => {
                print_summary(&summary);
                if do_report {
                    let dir = results_dir(&opts);
                    if let Err(e) =
                        report::update_markdown(&dir, std::path::Path::new("EXPERIMENTS.md"))
                    {
                        eprintln!("report: {e}");
                        return 2;
                    }
                    println!("EXPERIMENTS.md report block regenerated");
                }
                if strict && summary.fail > 0 {
                    eprintln!("strict mode: {} expectation failure(s)", summary.fail);
                    1
                } else {
                    0
                }
            }
            Err(e) => {
                eprintln!("suite: {e}");
                2
            }
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(v: &[&str]) -> Vec<String> {
        v.iter().map(|x| x.to_string()).collect()
    }

    #[test]
    fn parse_run_flags() {
        let cmd = parse_args(&s(&["--only", "fig2,fig3", "--strict", "--out", "/tmp/r"])).unwrap();
        match cmd {
            SuiteCommand::Run { opts, strict, report } => {
                assert_eq!(opts.only, vec!["fig2", "fig3"]);
                assert_eq!(opts.out_dir, Some(PathBuf::from("/tmp/r")));
                assert!(strict);
                assert!(!report);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn parse_threads_flag() {
        match parse_args(&s(&["--threads", "4"])).unwrap() {
            SuiteCommand::Run { opts, .. } => assert_eq!(opts.threads, 4),
            other => panic!("unexpected {other:?}"),
        }
        match parse_args(&s(&["--threads", "0"])).unwrap() {
            SuiteCommand::Run { opts, .. } => assert_eq!(opts.threads, 0),
            other => panic!("unexpected {other:?}"),
        }
        assert!(parse_args(&s(&["--threads"])).is_err());
        let err = parse_args(&s(&["--threads", "four"])).unwrap_err();
        assert!(err.contains("four"), "{err}");
    }

    #[test]
    fn parse_list_help_and_errors() {
        assert_eq!(parse_args(&s(&["--list"])).unwrap(), SuiteCommand::List);
        assert_eq!(parse_args(&s(&["--help"])).unwrap(), SuiteCommand::Help);
        assert_eq!(parse_args(&s(&["--report-only"])).unwrap(), SuiteCommand::Report);
        assert!(parse_args(&s(&["--bogus"])).is_err());
        assert!(parse_args(&s(&["--only"])).is_err());
    }

    #[test]
    fn thread_cpu_is_monotone_when_available() {
        if let (Some(a), Some(b)) = (thread_cpu_s(), thread_cpu_s()) {
            assert!(b >= a);
        }
    }
}
