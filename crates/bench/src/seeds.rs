//! The one place every experiment RNG seed lives.
//!
//! Each figure/ablation draws its Monte-Carlo streams from a dedicated
//! base seed (mixed with the run index by `leosim::montecarlo::run_rng`),
//! so experiments are reproducible independently and never share a stream.
//! Seeds used to be magic literals scattered across the 21 binaries; they
//! are centralized here with a distinctness test so two experiments can
//! never silently correlate.

/// Fig 2 — coverage vs constellation size (Taipei sampling).
pub const FIG2: u64 = 0xF162;
/// Fig 3 — idle time (constellation sample).
pub const FIG3: u64 = 0xF163;
/// Fig 4a — random-addition experiment.
pub const FIG4A: u64 = 0xF164A;
/// Fig 5 — half-withdrawal experiment.
pub const FIG5: u64 = 0xF165;
/// Fig 6 — skewed-withdrawal experiment.
pub const FIG6: u64 = 0xF166;
/// Ablation: elevation-mask sensitivity (subset sampling).
pub const ABLATION_ELEVATION: u64 = 0xAB1;
/// Ablation: bent-pipe vs ISL (subset sampling).
pub const ABLATION_ISL: u64 = 0xAB2;
/// Ablation: fixed vs dynamic pricing (subset sampling).
pub const ABLATION_PRICING: u64 = 0xAB3;
/// Ablation: LEO vs GEO latency (subset sampling).
pub const ABLATION_LATENCY: u64 = 0xAB4;
/// Ablation: bootstrapping (DTN subsets + token-economy sample).
pub const ABLATION_BOOTSTRAP: u64 = 0xAB5;
/// Ablation: ownership interleaving (base sampling).
pub const ABLATION_OWNERSHIP: u64 = 0xAB6;
/// Ablation: ownership interleaving — the independent registry-shuffle
/// stream (historically `0xAB6 ^ 0xFF`).
pub const ABLATION_OWNERSHIP_SHUFFLE: u64 = 0xAB6 ^ 0xFF;
/// Ablation: sellable SLA tiers (subset sampling).
pub const ABLATION_QOS: u64 = 0xAB8;
/// Ablation: failures + replenishment (subset sampling).
pub const ABLATION_FAILURES: u64 = 0xAB9;
/// Ablation: failures + replenishment — the failure-process stream.
pub const ABLATION_FAILURES_PROCESS: u64 = 0xF411;
/// Ablation: downlink arbitration (subset sampling).
pub const ABLATION_DOWNLINK: u64 = 0xABA;
/// Ablation: cost of coverage (subset sampling).
pub const ABLATION_ECONOMICS: u64 = 0xABE;
/// Traffic engine: diurnal demand run (subset sampling + demand jitter).
pub const TRAFFIC: u64 = 0x7AF1C;
/// Ablation: demand-scale sweep over the traffic engine.
pub const ABLATION_TRAFFIC_MIX: u64 = 0x7AF2;
/// Churn campaign: mid-run failures + party withdrawal (subset sampling,
/// demand jitter, failure-set permutation).
pub const CHURN_WITHDRAWAL: u64 = 0xC4012;
/// Ablation: churn-rate sweep over the campaign engine.
pub const ABLATION_CHURN_RATE: u64 = 0xC4013;

/// Every seed above, labelled. The registry records these in each
/// experiment's JSON result and the test below keeps them distinct.
pub const ALL: &[(&str, u64)] = &[
    ("fig2", FIG2),
    ("fig3", FIG3),
    ("fig4a", FIG4A),
    ("fig5", FIG5),
    ("fig6", FIG6),
    ("ablation_elevation", ABLATION_ELEVATION),
    ("ablation_isl", ABLATION_ISL),
    ("ablation_pricing", ABLATION_PRICING),
    ("ablation_latency", ABLATION_LATENCY),
    ("ablation_bootstrap", ABLATION_BOOTSTRAP),
    ("ablation_ownership", ABLATION_OWNERSHIP),
    ("ablation_ownership_shuffle", ABLATION_OWNERSHIP_SHUFFLE),
    ("ablation_qos", ABLATION_QOS),
    ("ablation_failures", ABLATION_FAILURES),
    ("ablation_failures_process", ABLATION_FAILURES_PROCESS),
    ("ablation_downlink", ABLATION_DOWNLINK),
    ("ablation_economics", ABLATION_ECONOMICS),
    ("traffic_diurnal", TRAFFIC),
    ("ablation_traffic_mix", ABLATION_TRAFFIC_MIX),
    ("churn_withdrawal", CHURN_WITHDRAWAL),
    ("ablation_churn_rate", ABLATION_CHURN_RATE),
];

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    #[test]
    fn all_seeds_distinct() {
        let unique: BTreeSet<u64> = ALL.iter().map(|(_, s)| *s).collect();
        assert_eq!(unique.len(), ALL.len(), "duplicate experiment seeds in {ALL:?}");
    }

    #[test]
    fn labels_distinct() {
        let unique: BTreeSet<&str> = ALL.iter().map(|(l, _)| *l).collect();
        assert_eq!(unique.len(), ALL.len());
    }
}
