//! Paper-expectation gates.
//!
//! Each experiment declares the paper's headline numbers as a table of
//! [`Expectation`]s — a metric (a key into the result's scalars), a
//! comparator with a tolerance band, and the paper reference the number
//! comes from. The runner evaluates every band to pass/warn/fail, records
//! the outcomes in the JSON result, and (with `--strict`) folds them into
//! the process exit code. This replaces the old `println!` epilogues
//! ("paper shape: …") that nothing machine-checked.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// How a measured scalar is compared against the paper target.
/// (Outcomes serialize the comparator as its symbol string, so the enum
/// itself stays serde-free.)
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Comparator {
    /// Measured must be at least the target (warn band: `target - tol`).
    Ge,
    /// Measured must be at most the target (warn band: `target + tol`).
    Le,
    /// Measured must be within `tol` of the target (warn band: `2 * tol`).
    Within,
}

impl Comparator {
    /// Human operator, for reports.
    pub fn symbol(&self) -> &'static str {
        match self {
            Comparator::Ge => ">=",
            Comparator::Le => "<=",
            Comparator::Within => "≈",
        }
    }
}

/// A paper-expectation band on one scalar metric. Declared with
/// `&'static str` references into the experiment, so it is not a serde
/// type — only the evaluated [`ExpectationOutcome`] is serialized.
#[derive(Debug, Clone, PartialEq)]
pub struct Expectation {
    /// Key into the result's scalars.
    pub metric: &'static str,
    /// Comparison direction.
    pub comparator: Comparator,
    /// The paper's number (or the bound derived from its claim).
    pub target: f64,
    /// Tolerance band: a violation within it is a warning, beyond it a
    /// failure.
    pub tol: f64,
    /// Where in the paper the number comes from.
    pub paper_ref: &'static str,
    /// Enforce strictly at quick fidelity too. Expectations that only
    /// materialize at the paper's week-long horizon set this to `false`
    /// and are auto-downgraded to warnings on quick runs.
    pub quick_strict: bool,
}

/// Pass/warn/fail status of one evaluated expectation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
#[serde(rename_all = "snake_case")]
pub enum Status {
    /// The band holds.
    Pass,
    /// The band is violated within tolerance, or was downgraded (quick
    /// fidelity or warn-only mode).
    Warn,
    /// The band is violated beyond tolerance.
    Fail,
}

impl Status {
    /// Short label for tables.
    pub fn label(&self) -> &'static str {
        match self {
            Status::Pass => "pass",
            Status::Warn => "warn",
            Status::Fail => "FAIL",
        }
    }
}

/// One evaluated expectation, as recorded in the JSON result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExpectationOutcome {
    /// The metric tested.
    pub metric: String,
    /// Comparator symbol (`>=`, `<=`, `≈`).
    pub comparator: String,
    /// The paper target.
    pub target: f64,
    /// The tolerance band.
    pub tol: f64,
    /// The measured value (`None` when the experiment produced no such
    /// scalar — itself a failure).
    pub measured: Option<f64>,
    /// Evaluated status after any downgrades.
    pub status: Status,
    /// Paper reference.
    pub paper_ref: String,
    /// Set when the raw status was downgraded, explaining why.
    pub downgraded: Option<String>,
}

/// Evaluate one expectation against a scalar map. `full` is the run's
/// fidelity; `warn_only` turns every failure into a warning (the CI mode).
pub fn evaluate(
    exp: &Expectation,
    scalars: &BTreeMap<String, f64>,
    full: bool,
    warn_only: bool,
) -> ExpectationOutcome {
    let measured = scalars.get(exp.metric).copied();
    let raw = match measured {
        None => Status::Fail,
        Some(m) => {
            let (holds, within_tol) = match exp.comparator {
                Comparator::Ge => (m >= exp.target, m >= exp.target - exp.tol),
                Comparator::Le => (m <= exp.target, m <= exp.target + exp.tol),
                Comparator::Within => {
                    let d = (m - exp.target).abs();
                    (d <= exp.tol, d <= 2.0 * exp.tol)
                }
            };
            if holds {
                Status::Pass
            } else if within_tol {
                Status::Warn
            } else {
                Status::Fail
            }
        }
    };
    let mut downgraded = None;
    let status = if raw == Status::Fail && warn_only {
        downgraded = Some("warn-only mode".to_string());
        Status::Warn
    } else if raw == Status::Fail && !full && !exp.quick_strict {
        downgraded = Some("quick fidelity (band needs the paper's horizon)".to_string());
        Status::Warn
    } else {
        raw
    };
    ExpectationOutcome {
        metric: exp.metric.to_string(),
        comparator: exp.comparator.symbol().to_string(),
        target: exp.target,
        tol: exp.tol,
        measured,
        status,
        paper_ref: exp.paper_ref.to_string(),
        downgraded,
    }
}

/// Evaluate a whole expectation table.
pub fn evaluate_all(
    exps: &[Expectation],
    scalars: &BTreeMap<String, f64>,
    full: bool,
    warn_only: bool,
) -> Vec<ExpectationOutcome> {
    exps.iter().map(|e| evaluate(e, scalars, full, warn_only)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scalars(pairs: &[(&str, f64)]) -> BTreeMap<String, f64> {
        pairs.iter().map(|(k, v)| (k.to_string(), *v)).collect()
    }

    fn exp(comparator: Comparator, target: f64, tol: f64, quick_strict: bool) -> Expectation {
        Expectation { metric: "m", comparator, target, tol, paper_ref: "§test", quick_strict }
    }

    #[test]
    fn ge_pass_warn_fail() {
        let s = |v| scalars(&[("m", v)]);
        let e = exp(Comparator::Ge, 50.0, 10.0, true);
        assert_eq!(evaluate(&e, &s(55.0), true, false).status, Status::Pass);
        assert_eq!(evaluate(&e, &s(45.0), true, false).status, Status::Warn);
        assert_eq!(evaluate(&e, &s(30.0), true, false).status, Status::Fail);
    }

    #[test]
    fn le_and_within() {
        let s = |v| scalars(&[("m", v)]);
        let le = exp(Comparator::Le, 10.0, 2.0, true);
        assert_eq!(evaluate(&le, &s(9.0), true, false).status, Status::Pass);
        assert_eq!(evaluate(&le, &s(11.0), true, false).status, Status::Warn);
        assert_eq!(evaluate(&le, &s(13.0), true, false).status, Status::Fail);
        let w = exp(Comparator::Within, 24.17, 3.0, true);
        assert_eq!(evaluate(&w, &s(25.0), true, false).status, Status::Pass);
        assert_eq!(evaluate(&w, &s(29.0), true, false).status, Status::Warn);
        assert_eq!(evaluate(&w, &s(31.0), true, false).status, Status::Fail);
    }

    #[test]
    fn missing_metric_fails() {
        let e = exp(Comparator::Ge, 1.0, 0.0, true);
        let out = evaluate(&e, &scalars(&[]), true, false);
        assert_eq!(out.status, Status::Fail);
        assert_eq!(out.measured, None);
    }

    #[test]
    fn downgrades() {
        let s = scalars(&[("m", 0.0)]);
        // Non-strict expectation fails hard at full but only warns quick.
        let e = exp(Comparator::Ge, 50.0, 1.0, false);
        assert_eq!(evaluate(&e, &s, true, false).status, Status::Fail);
        let quick = evaluate(&e, &s, false, false);
        assert_eq!(quick.status, Status::Warn);
        assert!(quick.downgraded.is_some());
        // Warn-only mode downgrades even strict full-fidelity failures.
        let strict = exp(Comparator::Ge, 50.0, 1.0, true);
        assert_eq!(evaluate(&strict, &s, true, true).status, Status::Warn);
        // But passes stay passes.
        let ok = scalars(&[("m", 60.0)]);
        assert_eq!(evaluate(&strict, &ok, false, true).status, Status::Pass);
    }
}
