//! # mpleo-bench — the experiment harness
//!
//! One binary per figure of the paper (`fig1a`, `fig2`, … `fig6`) plus
//! three ablation studies; each prints the series the paper plots. Run with
//! `cargo run --release -p mpleo-bench --bin fig2`.
//!
//! Two fidelity levels:
//!
//! * **default** — scaled-down (shorter horizon, coarser step, fewer
//!   Monte-Carlo runs) so every figure regenerates in seconds on a laptop;
//! * **full** — the paper's settings (1 week, 60 s step, 100 runs), enabled
//!   by setting `MPLEO_FULL=1`.
//!
//! Every binary prints which fidelity it ran and the exact parameters, so
//! EXPERIMENTS.md can record paper-vs-measured unambiguously.

use geodata::{paper_cities, population_weights, City};
use leosim::ephemeris::EphemerisStore;
use leosim::visibility::{SimConfig, VisibilityTable};
use leosim::TimeGrid;
use orbital::constellation::{starlink_gen1_pool, Satellite};
use orbital::ground::GroundSite;
use orbital::time::Epoch;
use std::path::PathBuf;
use std::sync::OnceLock;

/// Experiment fidelity settings.
#[derive(Debug, Clone, Copy)]
pub struct Fidelity {
    /// Simulated horizon, seconds.
    pub horizon_s: f64,
    /// Time step, seconds.
    pub step_s: f64,
    /// Monte-Carlo runs per point.
    pub runs: usize,
    /// True when running the paper's full settings.
    pub full: bool,
}

impl Fidelity {
    /// Resolve fidelity from the `MPLEO_FULL` environment variable.
    pub fn from_env() -> Fidelity {
        let full = std::env::var("MPLEO_FULL").map(|v| v == "1").unwrap_or(false);
        if full {
            Fidelity { horizon_s: 7.0 * 86_400.0, step_s: 60.0, runs: 100, full: true }
        } else {
            Fidelity { horizon_s: 2.0 * 86_400.0, step_s: 120.0, runs: 15, full: false }
        }
    }

    /// Print the standard experiment banner.
    pub fn banner(&self, figure: &str, what: &str) {
        println!("=== {figure}: {what} ===");
        println!(
            "fidelity: {} (horizon {:.1} days, step {:.0} s, {} runs){}",
            if self.full { "FULL (paper settings)" } else { "quick" },
            self.horizon_s / 86_400.0,
            self.step_s,
            self.runs,
            if self.full { "" } else { "  [set MPLEO_FULL=1 for paper settings]" }
        );
    }
}

/// The common scenario epoch for all experiments.
pub fn scenario_epoch() -> Epoch {
    Epoch::from_ymdhms(2024, 6, 1, 0, 0, 0.0)
}

/// The standard experiment context: Starlink-like pool, the paper's 21
/// cities with population weights, and a time grid.
pub struct Context {
    /// The satellite pool (Starlink Gen1-like, ~4.4k satellites).
    pub pool: Vec<Satellite>,
    /// The paper's 21-city terminal set.
    pub cities: Vec<City>,
    /// City ground sites (same order as `cities`).
    pub sites: Vec<GroundSite>,
    /// Population weights (same order, sum 1).
    pub weights: Vec<f64>,
    /// The simulation grid.
    pub grid: TimeGrid,
    /// Link configuration.
    pub config: SimConfig,
    /// The pool-wide ephemeris, propagated lazily at most once per process
    /// and shared by every table/figure this context produces.
    ephemeris: OnceLock<EphemerisStore>,
}

impl Context {
    /// Build the standard context at a fidelity.
    pub fn new(fidelity: &Fidelity) -> Context {
        let epoch = scenario_epoch();
        let pool = starlink_gen1_pool(epoch);
        let cities = paper_cities();
        let sites = geodata::to_sites(&cities);
        let weights = population_weights(&cities);
        let grid = TimeGrid::new(epoch, fidelity.horizon_s, fidelity.step_s);
        Context {
            pool,
            cities,
            sites,
            weights,
            grid,
            config: SimConfig::default(),
            ephemeris: OnceLock::new(),
        }
    }

    /// The pool-wide ephemeris store: propagate the ~4.4k-satellite pool
    /// over the grid exactly once per process and reuse it for every table,
    /// mask, sample and figure. When the `MPLEO_EPHEMERIS_CACHE` environment
    /// variable (or `--ephemeris-cache` in the CLI) names a file, the store
    /// is also cached there across processes, keyed by
    /// (pool hash, grid, propagator).
    pub fn pool_ephemeris(&self) -> &EphemerisStore {
        self.ephemeris.get_or_init(|| {
            let cache = ephemeris_cache_from_env();
            EphemerisStore::load_or_build(&self.pool, &self.grid, &self.config, cache.as_deref())
        })
    }

    /// Compute the pool-wide visibility table against the 21 cities.
    /// Pure geometry over [`Context::pool_ephemeris`].
    pub fn city_table(&self) -> VisibilityTable {
        self.table_for(&self.sites)
    }

    /// Compute a visibility table against a custom site list, reusing the
    /// shared pool ephemeris.
    pub fn table_for(&self, sites: &[GroundSite]) -> VisibilityTable {
        self.table_for_config(sites, &self.config)
    }

    /// [`Context::table_for`] with a custom config (e.g. a different
    /// elevation mask). `config.propagator` must match the context's — the
    /// shared store was propagated with the context's model.
    pub fn table_for_config(&self, sites: &[GroundSite], config: &SimConfig) -> VisibilityTable {
        assert_eq!(
            config.propagator, self.config.propagator,
            "shared ephemeris was built with the context's propagator"
        );
        VisibilityTable::from_store(self.pool_ephemeris(), sites, config)
    }

    /// Visibility table for a subset of pool rows (table order follows
    /// `indices`), reusing the shared pool ephemeris — no re-propagation.
    pub fn subset_table(&self, indices: &[usize], sites: &[GroundSite]) -> VisibilityTable {
        self.subset_table_config(indices, sites, &self.config)
    }

    /// [`Context::subset_table`] with a custom config (same propagator rule
    /// as [`Context::table_for_config`]).
    pub fn subset_table_config(
        &self,
        indices: &[usize],
        sites: &[GroundSite],
        config: &SimConfig,
    ) -> VisibilityTable {
        assert_eq!(
            config.propagator, self.config.propagator,
            "shared ephemeris was built with the context's propagator"
        );
        VisibilityTable::from_store_subset(self.pool_ephemeris(), indices, sites, config)
    }

    /// A standalone ephemeris store for a subset of pool rows (row order
    /// follows `indices`), copied from the shared store without
    /// re-propagating.
    pub fn subset_ephemeris(&self, indices: &[usize]) -> EphemerisStore {
        self.pool_ephemeris().select(indices)
    }
}

/// The ephemeris disk-cache path configured via `MPLEO_EPHEMERIS_CACHE`
/// (empty value = disabled).
pub fn ephemeris_cache_from_env() -> Option<PathBuf> {
    std::env::var_os("MPLEO_EPHEMERIS_CACHE")
        .filter(|v| !v.is_empty())
        .map(PathBuf::from)
}

/// Render a simple aligned table to stdout.
pub fn print_table(headers: &[&str], rows: &[Vec<String>]) {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let line = |cells: Vec<String>| {
        let mut s = String::new();
        for (i, c) in cells.iter().enumerate() {
            s.push_str(&format!("{:>width$}  ", c, width = widths[i]));
        }
        println!("{}", s.trim_end());
    };
    line(headers.iter().map(|h| h.to_string()).collect());
    line(widths.iter().map(|w| "-".repeat(*w)).collect());
    for row in rows {
        line(row.clone());
    }
}

/// Format seconds as `Xh Ym` style via the orbital helper.
pub fn fmt_dur(seconds: f64) -> String {
    orbital::time::format_duration(seconds)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fidelity_defaults_quick() {
        std::env::remove_var("MPLEO_FULL");
        let f = Fidelity::from_env();
        assert!(!f.full);
        assert!(f.runs < 100);
    }

    #[test]
    fn context_builds() {
        let f = Fidelity { horizon_s: 3600.0, step_s: 600.0, runs: 1, full: false };
        let ctx = Context::new(&f);
        assert_eq!(ctx.cities.len(), 21);
        assert_eq!(ctx.sites.len(), 21);
        assert!((ctx.weights.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!(ctx.pool.len() > 4000);
        assert_eq!(ctx.grid.steps, 7);
    }

    #[test]
    fn pool_ephemeris_built_once_and_reused() {
        let f = Fidelity { horizon_s: 3600.0, step_s: 600.0, runs: 1, full: false };
        let ctx = Context::new(&f);
        let a: *const EphemerisStore = ctx.pool_ephemeris();
        let b: *const EphemerisStore = ctx.pool_ephemeris();
        assert_eq!(a, b, "store must be built at most once per context");
        let vt = ctx.subset_table(&[0, 5, 9], &ctx.sites[..2]);
        assert_eq!(vt.sat_count(), 3);
        assert_eq!(vt.sat_ids[0], ctx.pool[0].id);
        assert_eq!(vt.sat_ids[1], ctx.pool[5].id);
        let sub = ctx.subset_ephemeris(&[0, 5, 9]);
        assert_eq!(sub.sat_count(), 3);
        assert_eq!(sub.position(1, 0), ctx.pool_ephemeris().position(5, 0));
    }

    #[test]
    fn table_printer_does_not_panic() {
        print_table(
            &["a", "long-header"],
            &[vec!["1".into(), "2".into()], vec!["333".into(), "4".into()]],
        );
    }
}
