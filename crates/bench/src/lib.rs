//! # mpleo-bench — the experiment harness
//!
//! One binary per figure of the paper (`fig1a`, `fig2`, … `fig6`) plus
//! three ablation studies; each prints the series the paper plots. Run with
//! `cargo run --release -p mpleo-bench --bin fig2`.
//!
//! Two fidelity levels:
//!
//! * **default** — scaled-down (shorter horizon, coarser step, fewer
//!   Monte-Carlo runs) so every figure regenerates in seconds on a laptop;
//! * **full** — the paper's settings (1 week, 60 s step, 100 runs), enabled
//!   by setting `MPLEO_FULL=1`.
//!
//! Every binary prints which fidelity it ran and the exact parameters, so
//! EXPERIMENTS.md can record paper-vs-measured unambiguously.

pub mod expectations;
pub mod experiment;
pub mod experiments;
pub mod registry;
pub mod report;
pub mod runner;
pub mod seeds;

use geodata::{paper_cities, population_weights, City};
use leosim::ephemeris::EphemerisStore;
use leosim::visibility::{SimConfig, VisibilityTable};
use leosim::TimeGrid;
use orbital::constellation::{starlink_gen1_pool, Satellite};
use orbital::ground::GroundSite;
use orbital::time::Epoch;
use std::collections::BTreeMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

/// Experiment fidelity settings.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Fidelity {
    /// Simulated horizon, seconds.
    pub horizon_s: f64,
    /// Time step, seconds.
    pub step_s: f64,
    /// Monte-Carlo runs per point.
    pub runs: usize,
    /// True when running the paper's full settings.
    pub full: bool,
    /// Worker threads for the shared `simrt` pool (0 = auto-detect).
    pub threads: usize,
}

/// An invalid fidelity environment variable. The offending variable and
/// value are spelled out so a typo'd override fails loudly instead of
/// silently running the default settings.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FidelityError {
    /// The environment variable at fault.
    pub var: &'static str,
    /// The rejected value.
    pub value: String,
    /// What was expected instead.
    pub expected: &'static str,
}

impl std::fmt::Display for FidelityError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}={:?} is invalid: expected {}", self.var, self.value, self.expected)
    }
}

impl std::error::Error for FidelityError {}

impl Fidelity {
    /// The default quick settings: every experiment regenerates in seconds.
    pub fn quick() -> Fidelity {
        Fidelity { horizon_s: 2.0 * 86_400.0, step_s: 120.0, runs: 15, full: false, threads: 0 }
    }

    /// The paper's settings: one week, 60 s step, 100 Monte-Carlo runs.
    pub fn paper() -> Fidelity {
        Fidelity { horizon_s: 7.0 * 86_400.0, step_s: 60.0, runs: 100, full: true, threads: 0 }
    }

    /// Resolve fidelity from the process environment (`MPLEO_FULL`, plus
    /// validated `MPLEO_RUNS` / `MPLEO_HORIZON_S` / `MPLEO_STEP_S` /
    /// `MPLEO_THREADS` overrides).
    pub fn from_env() -> Result<Fidelity, FidelityError> {
        Self::from_env_map(&std::env::vars().collect())
    }

    /// [`Fidelity::from_env`] over an explicit map, so tests can inject an
    /// environment instead of mutating (and racing on) the process one.
    pub fn from_env_map(env: &BTreeMap<String, String>) -> Result<Fidelity, FidelityError> {
        let full = match env.get("MPLEO_FULL").map(String::as_str) {
            None | Some("") | Some("0") => false,
            Some("1") => true,
            Some(other) => {
                return Err(FidelityError {
                    var: "MPLEO_FULL",
                    value: other.to_string(),
                    expected: "0 or 1",
                })
            }
        };
        let mut fidelity = if full { Self::paper() } else { Self::quick() };
        if let Some(v) = env.get("MPLEO_RUNS").filter(|v| !v.is_empty()) {
            fidelity.runs = v.parse::<usize>().ok().filter(|&n| n >= 1).ok_or(FidelityError {
                var: "MPLEO_RUNS",
                value: v.clone(),
                expected: "a positive integer",
            })?;
        }
        if let Some(v) = env.get("MPLEO_HORIZON_S").filter(|v| !v.is_empty()) {
            fidelity.horizon_s =
                v.parse::<f64>().ok().filter(|h| h.is_finite() && *h > 0.0).ok_or(
                    FidelityError {
                        var: "MPLEO_HORIZON_S",
                        value: v.clone(),
                        expected: "a positive number of seconds",
                    },
                )?;
        }
        if let Some(v) = env.get("MPLEO_STEP_S").filter(|v| !v.is_empty()) {
            fidelity.step_s = v.parse::<f64>().ok().filter(|s| s.is_finite() && *s > 0.0).ok_or(
                FidelityError {
                    var: "MPLEO_STEP_S",
                    value: v.clone(),
                    expected: "a positive number of seconds",
                },
            )?;
        }
        if let Some(v) = env.get(simrt::THREADS_ENV) {
            fidelity.threads = simrt::env_threads(Some(v))
                .map_err(|e| FidelityError {
                    var: simrt::THREADS_ENV,
                    value: e.value,
                    expected: "a non-negative integer (0 = auto)",
                })?
                .unwrap_or(0);
        }
        if fidelity.step_s > fidelity.horizon_s {
            return Err(FidelityError {
                var: "MPLEO_STEP_S",
                value: format!("{}", fidelity.step_s),
                expected: "a step no larger than the horizon",
            });
        }
        Ok(fidelity)
    }

    /// Print the standard experiment banner.
    pub fn banner(&self, figure: &str, what: &str) {
        println!("=== {figure}: {what} ===");
        println!(
            "fidelity: {} (horizon {:.1} days, step {:.0} s, {} runs){}",
            if self.full { "FULL (paper settings)" } else { "quick" },
            self.horizon_s / 86_400.0,
            self.step_s,
            self.runs,
            if self.full { "" } else { "  [set MPLEO_FULL=1 for paper settings]" }
        );
    }
}

/// The common scenario epoch for all experiments.
pub fn scenario_epoch() -> Epoch {
    Epoch::from_ymdhms(2024, 6, 1, 0, 0, 0.0)
}

/// The standard experiment context: Starlink-like pool, the paper's 21
/// cities with population weights, and a time grid.
pub struct Context {
    /// The satellite pool (Starlink Gen1-like, ~4.4k satellites).
    pub pool: Vec<Satellite>,
    /// The paper's 21-city terminal set.
    pub cities: Vec<City>,
    /// City ground sites (same order as `cities`).
    pub sites: Vec<GroundSite>,
    /// Population weights (same order, sum 1).
    pub weights: Vec<f64>,
    /// The simulation grid.
    pub grid: TimeGrid,
    /// Link configuration.
    pub config: SimConfig,
    /// The pool-wide ephemeris, propagated lazily at most once per process
    /// and shared by every table/figure this context produces.
    ephemeris: OnceLock<EphemerisStore>,
}

impl Context {
    /// Build the standard context at a fidelity.
    pub fn new(fidelity: &Fidelity) -> Context {
        let epoch = scenario_epoch();
        let pool = starlink_gen1_pool(epoch);
        let cities = paper_cities();
        let sites = geodata::to_sites(&cities);
        let weights = population_weights(&cities);
        let grid = TimeGrid::new(epoch, fidelity.horizon_s, fidelity.step_s);
        Context {
            pool,
            cities,
            sites,
            weights,
            grid,
            config: SimConfig::default(),
            ephemeris: OnceLock::new(),
        }
    }

    /// The pool-wide ephemeris store: propagate the ~4.4k-satellite pool
    /// over the grid exactly once per process and reuse it for every table,
    /// mask, sample and figure. When the `MPLEO_EPHEMERIS_CACHE` environment
    /// variable (or `--ephemeris-cache` in the CLI) names a file, the store
    /// is also cached there across processes, keyed by
    /// (pool hash, grid, propagator).
    pub fn pool_ephemeris(&self) -> &EphemerisStore {
        self.ephemeris.get_or_init(|| {
            EPHEMERIS_BUILDS.fetch_add(1, Ordering::SeqCst);
            let cache = ephemeris_cache_from_env();
            EphemerisStore::load_or_build(&self.pool, &self.grid, &self.config, cache.as_deref())
        })
    }

    /// Compute the pool-wide visibility table against the 21 cities.
    /// Pure geometry over [`Context::pool_ephemeris`].
    pub fn city_table(&self) -> VisibilityTable {
        self.table_for(&self.sites)
    }

    /// Compute a visibility table against a custom site list, reusing the
    /// shared pool ephemeris.
    pub fn table_for(&self, sites: &[GroundSite]) -> VisibilityTable {
        self.table_for_config(sites, &self.config)
    }

    /// [`Context::table_for`] with a custom config (e.g. a different
    /// elevation mask). `config.propagator` must match the context's — the
    /// shared store was propagated with the context's model.
    pub fn table_for_config(&self, sites: &[GroundSite], config: &SimConfig) -> VisibilityTable {
        assert_eq!(
            config.propagator, self.config.propagator,
            "shared ephemeris was built with the context's propagator"
        );
        VisibilityTable::from_store(self.pool_ephemeris(), sites, config)
    }

    /// Visibility table for a subset of pool rows (table order follows
    /// `indices`), reusing the shared pool ephemeris — no re-propagation.
    pub fn subset_table(&self, indices: &[usize], sites: &[GroundSite]) -> VisibilityTable {
        self.subset_table_config(indices, sites, &self.config)
    }

    /// [`Context::subset_table`] with a custom config (same propagator rule
    /// as [`Context::table_for_config`]).
    pub fn subset_table_config(
        &self,
        indices: &[usize],
        sites: &[GroundSite],
        config: &SimConfig,
    ) -> VisibilityTable {
        assert_eq!(
            config.propagator, self.config.propagator,
            "shared ephemeris was built with the context's propagator"
        );
        VisibilityTable::from_store_subset(self.pool_ephemeris(), indices, sites, config)
    }

    /// A standalone ephemeris store for a subset of pool rows (row order
    /// follows `indices`), copied from the shared store without
    /// re-propagating.
    pub fn subset_ephemeris(&self, indices: &[usize]) -> EphemerisStore {
        self.pool_ephemeris().select(indices)
    }
}

/// The ephemeris disk-cache path configured via `MPLEO_EPHEMERIS_CACHE`
/// (empty value = disabled).
pub fn ephemeris_cache_from_env() -> Option<PathBuf> {
    std::env::var_os("MPLEO_EPHEMERIS_CACHE").filter(|v| !v.is_empty()).map(PathBuf::from)
}

/// Count of pool-wide ephemeris builds performed by [`Context`]s in this
/// process; the suite runner's one-build-per-process guarantee is asserted
/// against it.
static EPHEMERIS_BUILDS: AtomicUsize = AtomicUsize::new(0);

/// How many times any [`Context`] in this process has built (or loaded)
/// the pool-wide ephemeris.
pub fn ephemeris_build_count() -> usize {
    EPHEMERIS_BUILDS.load(Ordering::SeqCst)
}

/// Render a simple aligned table as a string. Ragged rows are tolerated:
/// rows longer than the header grow extra columns, shorter rows pad with
/// empty cells.
pub fn render_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i >= widths.len() {
                widths.push(0);
            }
            widths[i] = widths[i].max(cell.len());
        }
    }
    let mut out = String::new();
    let mut line = |cells: &[String]| {
        let mut s = String::new();
        for (i, w) in widths.iter().enumerate() {
            let empty = String::new();
            let c = cells.get(i).unwrap_or(&empty);
            s.push_str(&format!("{:>width$}  ", c, width = w));
        }
        out.push_str(s.trim_end());
        out.push('\n');
    };
    line(&headers.iter().map(|h| h.to_string()).collect::<Vec<_>>());
    line(&widths.iter().map(|w| "-".repeat(*w)).collect::<Vec<_>>());
    for row in rows {
        line(row);
    }
    out
}

/// Render a simple aligned table to stdout.
pub fn print_table(headers: &[&str], rows: &[Vec<String>]) {
    print!("{}", render_table(headers, rows));
}

/// Format seconds as `Xh Ym` style via the orbital helper.
pub fn fmt_dur(seconds: f64) -> String {
    orbital::time::format_duration(seconds)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn env(pairs: &[(&str, &str)]) -> BTreeMap<String, String> {
        pairs.iter().map(|(k, v)| (k.to_string(), v.to_string())).collect()
    }

    #[test]
    fn fidelity_defaults_quick() {
        // Injected env map — no process-env mutation, so this cannot race
        // with other tests under the parallel harness.
        let f = Fidelity::from_env_map(&env(&[])).unwrap();
        assert!(!f.full);
        assert!(f.runs < 100);
        assert_eq!(f, Fidelity::quick());
    }

    #[test]
    fn fidelity_full_and_overrides() {
        let f = Fidelity::from_env_map(&env(&[("MPLEO_FULL", "1")])).unwrap();
        assert_eq!(f, Fidelity::paper());
        let f = Fidelity::from_env_map(&env(&[
            ("MPLEO_RUNS", "3"),
            ("MPLEO_HORIZON_S", "7200"),
            ("MPLEO_STEP_S", "600"),
        ]))
        .unwrap();
        assert!(!f.full);
        assert_eq!(f.runs, 3);
        assert_eq!(f.horizon_s, 7200.0);
        assert_eq!(f.step_s, 600.0);
    }

    #[test]
    fn fidelity_threads_override() {
        let f = Fidelity::from_env_map(&env(&[("MPLEO_THREADS", "6")])).unwrap();
        assert_eq!(f.threads, 6);
        // Empty and "0" both mean auto.
        let f = Fidelity::from_env_map(&env(&[("MPLEO_THREADS", "0")])).unwrap();
        assert_eq!(f.threads, 0);
        let f = Fidelity::from_env_map(&env(&[("MPLEO_THREADS", "")])).unwrap();
        assert_eq!(f.threads, 0);
    }

    #[test]
    fn fidelity_rejects_garbage_loudly() {
        for (var, value) in [
            ("MPLEO_FULL", "yes"),
            ("MPLEO_RUNS", "ten"),
            ("MPLEO_RUNS", "0"),
            ("MPLEO_RUNS", "-2"),
            ("MPLEO_HORIZON_S", "1week"),
            ("MPLEO_HORIZON_S", "-5"),
            ("MPLEO_STEP_S", "NaN"),
            ("MPLEO_STEP_S", "0"),
            ("MPLEO_THREADS", "four"),
            ("MPLEO_THREADS", "-1"),
            ("MPLEO_THREADS", "2.5"),
        ] {
            let err = Fidelity::from_env_map(&env(&[(var, value)])).unwrap_err();
            assert_eq!(err.var, var, "{var}={value}");
            assert_eq!(err.value, value);
            assert!(err.to_string().contains(var));
        }
        // A step larger than the horizon is rejected even if both parse.
        let err =
            Fidelity::from_env_map(&env(&[("MPLEO_HORIZON_S", "100"), ("MPLEO_STEP_S", "200")]))
                .unwrap_err();
        assert_eq!(err.var, "MPLEO_STEP_S");
    }

    #[test]
    fn context_builds() {
        let f = Fidelity { horizon_s: 3600.0, step_s: 600.0, runs: 1, full: false, threads: 0 };
        let ctx = Context::new(&f);
        assert_eq!(ctx.cities.len(), 21);
        assert_eq!(ctx.sites.len(), 21);
        assert!((ctx.weights.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!(ctx.pool.len() > 4000);
        assert_eq!(ctx.grid.steps, 7);
    }

    #[test]
    fn pool_ephemeris_built_once_and_reused() {
        let f = Fidelity { horizon_s: 3600.0, step_s: 600.0, runs: 1, full: false, threads: 0 };
        let ctx = Context::new(&f);
        let a: *const EphemerisStore = ctx.pool_ephemeris();
        let b: *const EphemerisStore = ctx.pool_ephemeris();
        assert_eq!(a, b, "store must be built at most once per context");
        let vt = ctx.subset_table(&[0, 5, 9], &ctx.sites[..2]);
        assert_eq!(vt.sat_count(), 3);
        assert_eq!(vt.sat_ids[0], ctx.pool[0].id);
        assert_eq!(vt.sat_ids[1], ctx.pool[5].id);
        let sub = ctx.subset_ephemeris(&[0, 5, 9]);
        assert_eq!(sub.sat_count(), 3);
        assert_eq!(sub.position(1, 0), ctx.pool_ephemeris().position(5, 0));
    }

    #[test]
    fn table_printer_does_not_panic() {
        print_table(
            &["a", "long-header"],
            &[vec!["1".into(), "2".into()], vec!["333".into(), "4".into()]],
        );
    }

    #[test]
    fn render_table_empty_rows() {
        let s = render_table(&["a", "b"], &[]);
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 2, "header + rule only: {s:?}");
        assert!(lines[0].contains('a') && lines[0].contains('b'));
        assert!(lines[1].chars().all(|c| c == '-' || c == ' '));
    }

    #[test]
    fn render_table_ragged_rows() {
        // A row longer than the header grows a column; a shorter row pads.
        let s = render_table(
            &["x"],
            &[vec!["1".into(), "extra".into(), "more".into()], vec![], vec!["22".into()]],
        );
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 5);
        assert!(lines[2].contains("extra") && lines[2].contains("more"));
        assert!(lines[4].contains("22"));
    }

    #[test]
    fn fmt_dur_edges() {
        assert_eq!(fmt_dur(0.0), "0.0s");
        assert_eq!(fmt_dur(59.4), "59.4s");
        // Exactly one day and beyond 24 h both carry the day component.
        assert_eq!(fmt_dur(86_400.0), "1d 00h 00m");
        assert_eq!(fmt_dur(30.0 * 3600.0 + 90.0), "1d 06h 01m");
        assert_eq!(fmt_dur(10.0 * 86_400.0), "10d 00h 00m");
    }
}
